//! Deep SVDD (Ruff et al., ICML 2018) — an *extension* baseline.
//!
//! The paper's related work notes that deep one-class models "could be
//! considered, but they are not a practical option due to the … quite
//! limited amount of RF signal data". This implementation lets that
//! claim be tested: an MLP maps padded scan vectors into a feature space
//! and is trained to pull all (one-class) training points toward a fixed
//! center `c`; the distance to `c` is the outlier score.
//!
//! Following the original paper, `c` is set to the mean of the initial
//! forward pass and kept fixed; bias terms are omitted from the encoder
//! to avoid the trivial collapse solution.

use gem_core::pipeline::OutlierModel;
use gem_nn::tape::{Activation, Graph, ParamId, ParamStore, Var};
use gem_nn::{init, Adam, Optimizer, Tensor};
use gem_signal::rng::child_rng;
use gem_signal::{Label, PaddedMatrix, RecordSet, SignalRecord, RSS_PAD_DBM};

/// Deep SVDD hyperparameters.
#[derive(Clone, Debug)]
pub struct DeepSvddConfig {
    /// Output feature dimension.
    pub dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Training-distance quantile used as the decision radius.
    pub radius_quantile: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DeepSvddConfig {
    fn default() -> Self {
        DeepSvddConfig {
            dim: 16,
            hidden: 64,
            epochs: 60,
            batch_size: 32,
            learning_rate: 0.001,
            radius_quantile: 0.95,
            seed: 42,
        }
    }
}

/// The fitted Deep SVDD model.
pub struct DeepSvdd {
    /// Hyperparameters.
    pub cfg: DeepSvddConfig,
    universe: PaddedMatrix,
    store: ParamStore,
    w1: ParamId,
    w2: ParamId,
    center: Tensor,
    /// Squared decision radius.
    pub radius_sq: f64,
}

impl DeepSvdd {
    fn normalize(row: &[f32]) -> Vec<f32> {
        row.iter().map(|&v| (v - RSS_PAD_DBM) / 100.0).collect()
    }

    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        // Bias-free encoder (collapse prevention, per the original paper).
        let w1 = g.param(&self.store, self.w1);
        let h = g.matmul(x, w1);
        let h = g.activation(h, Activation::LeakyRelu);
        let w2 = g.param(&self.store, self.w2);
        g.matmul(h, w2)
    }

    fn encode(&self, normalized: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(1, normalized.len(), normalized.to_vec()));
        let out = self.forward(&mut g, x);
        g.value(out).row(0).to_vec()
    }

    /// Squared distance to the fixed center.
    pub fn distance_sq(&self, record: &SignalRecord) -> f64 {
        let (row, _) = self.universe.project(record);
        let z = self.encode(&Self::normalize(&row));
        z.iter().zip(self.center.row(0)).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum()
    }

    /// Fits the model on (one-class) training records.
    pub fn fit(cfg: DeepSvddConfig, train: &RecordSet) -> DeepSvdd {
        assert!(!train.is_empty(), "Deep SVDD needs training data");
        let universe = train.to_matrix(RSS_PAD_DBM);
        let width = universe.cols().max(1);
        let n = universe.rows;
        let mut x = Tensor::zeros(n, width);
        for i in 0..n {
            x.set_row(i, &Self::normalize(universe.row(i)));
        }

        let mut rng = child_rng(cfg.seed, 0xD5DD);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", init::xavier_uniform(&mut rng, width, cfg.hidden));
        let w2 = store.add("w2", init::xavier_uniform(&mut rng, cfg.hidden, cfg.dim));
        let mut model = DeepSvdd {
            universe,
            store,
            w1,
            w2,
            center: Tensor::zeros(1, cfg.dim),
            radius_sq: 0.0,
            cfg,
        };

        // Fix c to the mean of the initial embeddings (never updated).
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let out = model.forward(&mut g, xv);
        let init_out = g.value(out).clone();
        let mut center = Tensor::zeros(1, model.cfg.dim);
        for i in 0..n {
            for (c, &v) in center.row_mut(0).iter_mut().zip(init_out.row(i)) {
                *c += v / n as f32;
            }
        }
        model.center = center;

        let mut opt = Adam::new(model.cfg.learning_rate);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..model.cfg.epochs {
            order.rotate_left(1);
            for chunk in order.chunks(model.cfg.batch_size) {
                let mut batch = Tensor::zeros(chunk.len(), width);
                let mut target = Tensor::zeros(chunk.len(), model.cfg.dim);
                for (bi, &i) in chunk.iter().enumerate() {
                    batch.set_row(bi, x.row(i));
                    target.set_row(bi, model.center.row(0));
                }
                let mut g = Graph::new();
                let xv = g.constant(batch);
                let out = model.forward(&mut g, xv);
                let loss = g.mse_mean(out, target);
                g.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
                model.store.zero_grads();
            }
        }

        // Decision radius from the training-distance quantile.
        let mut dists: Vec<f64> = train.iter().map(|r| model.distance_sq(r)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let idx = (((n - 1) as f64) * model.cfg.radius_quantile) as usize;
        model.radius_sq = dists[idx].max(1e-12);
        model
    }

    /// Classifies a record; score is distance² / radius² (1.0 at the
    /// boundary).
    pub fn infer(&self, record: &SignalRecord) -> (Label, f64) {
        if record.is_empty() {
            return (Label::Out, f64::INFINITY);
        }
        let score = self.distance_sq(record) / self.radius_sq;
        (if score > 1.0 { Label::Out } else { Label::In }, score)
    }
}

impl OutlierModel for DeepSvdd {
    fn score(&self, sample: &[f32]) -> f64 {
        // When used on raw embeddings, interpret them as a projected row.
        let z = sample;
        z.iter().zip(self.center.row(0)).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>()
            / self.radius_sq
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.score(sample) > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::MacAddr;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn train() -> RecordSet {
        (0..50)
            .map(|i| {
                SignalRecord::from_pairs(
                    i as f64,
                    (1..=12).map(|m| {
                        let jitter = ((i * 31 + m as usize * 17) % 13) as f32 / 2.0;
                        (mac(m), -45.0 - m as f32 * 2.0 - jitter)
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn training_records_are_mostly_inside() {
        let model = DeepSvdd::fit(DeepSvddConfig::default(), &train());
        let inside = train().iter().filter(|r| model.infer(r).0 == Label::In).count();
        assert!(inside >= 45, "inside {inside}/50");
    }

    #[test]
    fn shifted_profiles_are_outside() {
        let model = DeepSvdd::fit(DeepSvddConfig::default(), &train());
        // Same MACs, inverted strengths.
        let rec = SignalRecord::from_pairs(0.0, (1..=12).map(|m| (mac(m), -95.0 + m as f32 * 2.0)));
        let (label, score) = model.infer(&rec);
        assert_eq!(label, Label::Out, "score {score}");
    }

    #[test]
    fn empty_records_are_outside() {
        let model = DeepSvdd::fit(DeepSvddConfig::default(), &train());
        assert_eq!(model.infer(&SignalRecord::new(0.0)).0, Label::Out);
    }

    #[test]
    fn training_pulls_points_toward_center() {
        let rs = train();
        let untrained_cfg = DeepSvddConfig { epochs: 0, ..DeepSvddConfig::default() };
        let untrained = DeepSvdd::fit(untrained_cfg, &rs);
        let trained = DeepSvdd::fit(DeepSvddConfig::default(), &rs);
        let mean_d = |m: &DeepSvdd| -> f64 {
            rs.iter().map(|r| m.distance_sq(r)).sum::<f64>() / rs.len() as f64
        };
        assert!(mean_d(&trained) < mean_d(&untrained), "training must contract the sphere");
    }
}
