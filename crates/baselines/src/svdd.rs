//! Support vector data description (Tax & Duin, 2004), implemented as a
//! kernel minimum enclosing ball via the Bădoiu–Clarkson / Frank–Wolfe
//! core-set iteration. This is the classifier inside the INOA baseline.
//!
//! With an RBF kernel, `k(x,x) = 1` for every point, so the squared
//! distance of `x` to the center `c = Σ αᵢ φ(xᵢ)` is
//! `1 − 2 Σ αᵢ k(x, xᵢ) + ‖c‖²`.

use gem_core::pipeline::OutlierModel;

/// A fitted SVDD ball over one feature space.
#[derive(Clone, Debug)]
pub struct Svdd {
    points: Vec<Vec<f32>>,
    alpha: Vec<f64>,
    /// RBF bandwidth `γ` in `exp(−γ‖x−y‖²)`.
    pub gamma: f64,
    /// `‖c‖²` of the fitted center.
    center_norm_sq: f64,
    /// Squared radius of the ball (with slack margin applied).
    pub radius_sq: f64,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
}

impl Svdd {
    /// Fits the kernel MEB with `iterations` Frank–Wolfe steps. `margin`
    /// (≥ 1) scales the squared radius to tolerate boundary noise.
    /// Equivalent to [`Svdd::fit_soft`] with `nu = 0`.
    pub fn fit(train: &[Vec<f32>], gamma: f64, iterations: usize, margin: f64) -> Self {
        Self::fit_soft(train, gamma, iterations, margin, 0.0)
    }

    /// Soft-margin SVDD (Tax & Duin): the ball's radius is set so that a
    /// `nu` fraction of training points fall *outside* (slack), which is
    /// what keeps boundary noise from inflating the ball. `nu = 0`
    /// reduces to the hard minimum enclosing ball.
    pub fn fit_soft(
        train: &[Vec<f32>],
        gamma: f64,
        iterations: usize,
        margin: f64,
        nu: f64,
    ) -> Self {
        assert!(!train.is_empty(), "SVDD needs training data");
        let n = train.len();
        let kernel = |a: &[f32], b: &[f32]| (-gamma * sq_dist(a, b)).exp();
        let mut alpha = vec![0.0f64; n];
        alpha[0] = 1.0;
        // Cache k(c, x_j) = Σ_i α_i k(x_i, x_j) incrementally.
        let mut center_dot: Vec<f64> = (0..n).map(|j| kernel(&train[0], &train[j])).collect();
        let mut center_norm_sq = 1.0f64; // k(x0, x0)

        for t in 1..=iterations {
            // Farthest point from the current center.
            let (far, far_d2) = (0..n)
                .map(|j| (j, 1.0 - 2.0 * center_dot[j] + center_norm_sq))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            if far_d2 <= 1e-12 {
                break;
            }
            let eta = 1.0 / (t + 1) as f64;
            // c ← (1−η)c + η φ(x_far)
            center_norm_sq = (1.0 - eta) * (1.0 - eta) * center_norm_sq
                + 2.0 * eta * (1.0 - eta) * center_dot[far]
                + eta * eta;
            for j in 0..n {
                center_dot[j] = (1.0 - eta) * center_dot[j] + eta * kernel(&train[far], &train[j]);
            }
            for a in alpha.iter_mut() {
                *a *= 1.0 - eta;
            }
            alpha[far] += eta;
        }

        let mut dists: Vec<f64> =
            (0..n).map(|j| 1.0 - 2.0 * center_dot[j] + center_norm_sq).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let idx = (((n - 1) as f64) * (1.0 - nu.clamp(0.0, 0.5))) as usize;
        let radius_sq = dists[idx] * margin;
        Svdd { points: train.to_vec(), alpha, gamma, center_norm_sq, radius_sq }
    }

    /// Squared kernel distance from `x` to the ball center.
    pub fn distance_sq(&self, x: &[f32]) -> f64 {
        let dot: f64 = self
            .points
            .iter()
            .zip(&self.alpha)
            .filter(|(_, &a)| a > 1e-12)
            .map(|(p, &a)| a * (-self.gamma * sq_dist(x, p)).exp())
            .sum();
        1.0 - 2.0 * dot + self.center_norm_sq
    }

    /// True when `x` falls inside the (slack-scaled) ball.
    pub fn contains(&self, x: &[f32]) -> bool {
        self.distance_sq(x) <= self.radius_sq
    }

    /// A heuristic RBF bandwidth: inverse of the median squared pairwise
    /// distance of the sample (subsampled for large sets).
    pub fn median_gamma(train: &[Vec<f32>]) -> f64 {
        let n = train.len().min(64);
        let mut d2: Vec<f64> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                d2.push(sq_dist(&train[i], &train[j]));
            }
        }
        if d2.is_empty() {
            return 1.0;
        }
        d2.sort_by(|a, b| a.total_cmp(b));
        let median = d2[d2.len() / 2].max(1e-9);
        1.0 / median
    }
}

impl OutlierModel for Svdd {
    fn score(&self, sample: &[f32]) -> f64 {
        self.distance_sq(sample) - self.radius_sq
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        !self.contains(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<Vec<f32>> {
        (0..50).map(|i| vec![((i * 7) % 10) as f32 / 10.0, ((i * 3) % 10) as f32 / 10.0]).collect()
    }

    #[test]
    fn training_points_are_inside() {
        let train = cluster();
        let svdd = Svdd::fit(&train, Svdd::median_gamma(&train), 200, 1.05);
        let inside = train.iter().filter(|p| svdd.contains(p)).count();
        assert_eq!(inside, train.len(), "all training points inside the ball");
    }

    #[test]
    fn far_points_are_outside() {
        let train = cluster();
        let svdd = Svdd::fit(&train, Svdd::median_gamma(&train), 200, 1.05);
        assert!(!svdd.contains(&[8.0, -7.0]));
        assert!(svdd.score(&[8.0, -7.0]) > 0.0);
        assert!(svdd.score(&[0.5, 0.5]) < 0.0);
    }

    #[test]
    fn alpha_is_a_distribution() {
        let train = cluster();
        let svdd = Svdd::fit(&train, 1.0, 100, 1.0);
        let sum: f64 = svdd.alpha.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(svdd.alpha.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn single_point_ball_is_degenerate() {
        let train = vec![vec![1.0f32, 2.0]];
        let svdd = Svdd::fit(&train, 1.0, 50, 1.0);
        assert!(svdd.contains(&[1.0, 2.0]));
        assert!(!svdd.contains(&[5.0, 5.0]));
    }

    #[test]
    fn median_gamma_is_positive_and_scale_aware() {
        let tight: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 * 0.01]).collect();
        let wide: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        assert!(Svdd::median_gamma(&tight) > Svdd::median_gamma(&wide));
        assert!(Svdd::median_gamma(&[vec![1.0]]) > 0.0);
    }
}
