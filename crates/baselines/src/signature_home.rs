//! SignatureHome baseline (Tan et al., IoT geofencing for COVID-19 home
//! quarantine): learns the home area from network connectivity and a
//! database of padded RSS signatures.
//!
//! The home signature has two parts, per the paper's description:
//! 1. the *association* set — MACs the device would associate with at
//!    home (the strongest MACs observed during training);
//! 2. a database of fixed-length RSS vectors (missing entries padded
//!    with −120 dBm) against which new scans are matched by cosine
//!    similarity.
//!
//! A scan is in-premises when its strongest MAC belongs to the
//! association set *and* its best database match exceeds a similarity
//! threshold calibrated on leave-one-out training similarities.

use std::collections::HashSet;

use gem_signal::{Label, MacAddr, PaddedMatrix, RecordSet, SignalRecord, RSS_PAD_DBM};

/// SignatureHome hyperparameters.
#[derive(Clone, Debug)]
pub struct SignatureHomeConfig {
    /// A MAC joins the association set when it is the strongest reading
    /// in at least this fraction of training scans.
    pub association_fraction: f64,
    /// Quantile of leave-one-out training similarities used as the match
    /// threshold (lower quantile → more permissive).
    pub threshold_quantile: f64,
    /// Pad value for missing entries.
    pub pad_dbm: f32,
}

impl Default for SignatureHomeConfig {
    fn default() -> Self {
        SignatureHomeConfig {
            association_fraction: 0.05,
            threshold_quantile: 0.02,
            pad_dbm: RSS_PAD_DBM,
        }
    }
}

/// The fitted SignatureHome model.
pub struct SignatureHome {
    /// Configuration.
    pub cfg: SignatureHomeConfig,
    universe: PaddedMatrix,
    /// Shifted signature vectors.
    signatures: Vec<Vec<f32>>,
    association: HashSet<MacAddr>,
    /// Calibrated cosine-similarity threshold.
    pub threshold: f64,
}

fn shift(pad: f32, row: &[f32]) -> Vec<f32> {
    row.iter().map(|&v| v - pad).collect()
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += (x as f64) * (y as f64);
        na += (x as f64) * (x as f64);
        nb += (y as f64) * (y as f64);
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

impl SignatureHome {
    /// Builds the signature database and calibrates the match threshold.
    pub fn fit(cfg: SignatureHomeConfig, train: &RecordSet) -> Self {
        assert!(train.len() >= 2, "SignatureHome needs at least two scans");
        let universe = train.to_matrix(cfg.pad_dbm);
        let signatures: Vec<Vec<f32>> =
            (0..universe.rows).map(|i| shift(cfg.pad_dbm, universe.row(i))).collect();

        // Association set: MACs that ever win "strongest" often enough.
        let mut wins: std::collections::HashMap<MacAddr, usize> = std::collections::HashMap::new();
        for rec in train {
            if let Some(strongest) = rec.strongest() {
                *wins.entry(strongest.mac).or_default() += 1;
            }
        }
        let min_wins = ((train.len() as f64) * cfg.association_fraction).ceil() as usize;
        let association: HashSet<MacAddr> =
            wins.into_iter().filter(|&(_, w)| w >= min_wins.max(1)).map(|(m, _)| m).collect();

        // Leave-one-out best similarities → threshold at a low quantile.
        let mut best: Vec<f64> = (0..signatures.len())
            .map(|i| {
                signatures
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, s)| cosine(&signatures[i], s))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        best.sort_by(|a, b| a.total_cmp(b));
        let idx = (((best.len() - 1) as f64) * cfg.threshold_quantile) as usize;
        // Small slack keeps degenerate (near-duplicate) databases from
        // calibrating an unreachable threshold of exactly 1.0.
        let threshold = best[idx] - 1e-3;

        SignatureHome { cfg, universe, signatures, association, threshold }
    }

    /// The association MAC set.
    pub fn association(&self) -> &HashSet<MacAddr> {
        &self.association
    }

    /// Best cosine similarity of a scan against the signature database.
    pub fn best_similarity(&self, record: &SignalRecord) -> f64 {
        let (row, _) = self.universe.project(record);
        let shifted = shift(self.cfg.pad_dbm, &row);
        self.signatures.iter().map(|s| cosine(&shifted, s)).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Classifies one scan; the score is `1 − best similarity`.
    pub fn infer(&self, record: &SignalRecord) -> (Label, f64) {
        if record.is_empty() {
            return (Label::Out, 1.0);
        }
        let associated =
            record.strongest().map(|r| self.association.contains(&r.mac)).unwrap_or(false);
        let sim = self.best_similarity(record);
        let label = if associated && sim >= self.threshold { Label::In } else { Label::Out };
        (label, 1.0 - sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn train() -> RecordSet {
        (0..40)
            .map(|i| {
                let j = (i % 4) as f32;
                let jitter = ((i * 37) % 11) as f32 / 10.0;
                SignalRecord::from_pairs(
                    i as f64,
                    [
                        (mac(1), -45.0 - j - jitter), // home AP, always strongest
                        (mac(2), -60.0 + j + jitter / 2.0),
                        (mac(3), -75.0 - jitter),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn association_set_contains_home_ap() {
        let sh = SignatureHome::fit(SignatureHomeConfig::default(), &train());
        assert!(sh.association().contains(&mac(1)));
        assert!(!sh.association().contains(&mac(3)));
    }

    #[test]
    fn accepts_home_like_scans() {
        let sh = SignatureHome::fit(SignatureHomeConfig::default(), &train());
        let rec =
            SignalRecord::from_pairs(0.0, [(mac(1), -46.0), (mac(2), -61.0), (mac(3), -74.0)]);
        assert_eq!(sh.infer(&rec).0, Label::In);
    }

    #[test]
    fn rejects_when_strongest_is_foreign() {
        let sh = SignatureHome::fit(SignatureHomeConfig::default(), &train());
        // A neighbor AP dominates → not associated with home.
        let rec =
            SignalRecord::from_pairs(0.0, [(mac(99), -30.0), (mac(1), -80.0), (mac(2), -85.0)]);
        assert_eq!(sh.infer(&rec).0, Label::Out);
    }

    #[test]
    fn rejects_dissimilar_profiles() {
        let sh = SignatureHome::fit(SignatureHomeConfig::default(), &train());
        // Home AP still strongest but profile totally different.
        let rec = SignalRecord::from_pairs(0.0, [(mac(1), -20.0)]);
        let (_, score) = sh.infer(&rec);
        assert!(score >= 0.0);
        // Empty scans are always out.
        assert_eq!(sh.infer(&SignalRecord::new(0.0)).0, Label::Out);
    }

    #[test]
    fn training_scans_pass_their_own_test() {
        let rs = train();
        let sh = SignatureHome::fit(SignatureHomeConfig::default(), &rs);
        let accepted = rs.iter().filter(|r| sh.infer(r).0 == Label::In).count();
        assert!(accepted >= rs.len() * 9 / 10, "accepted {accepted}/{}", rs.len());
    }
}
