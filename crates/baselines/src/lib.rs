//! Reimplementations of every comparator in the paper's evaluation
//! (Table I):
//!
//! * embedding algorithms fed into GEM's detector ("X + OD"):
//!   [`graphsage`] (homogeneous GraphSAGE on the bipartite graph),
//!   [`autoencoder`] (conv/dense autoencoder on the padded signal
//!   matrix), [`mds`] (classical multidimensional scaling on 1−cosine
//!   distances);
//! * outlier detectors fed with BiSAGE embeddings ("BiSAGE + X"):
//!   [`iforest`] (isolation forest), [`lof`] (local outlier factor),
//!   [`feature_bagging`] (LOF ensemble over feature subsets);
//! * complete systems: [`signature_home`] (network signature matching)
//!   and [`inoa`] (per-MAC-pair sub-records + support vector data
//!   description, built on [`svdd`]);
//! * an extension beyond Table I: [`deep_svdd`] (Ruff et al.'s deep
//!   one-class model), testing the paper's claim that deep one-class
//!   methods are impractical at this data scale.
//!
//! Everything is from scratch; the embedders implement
//! [`gem_core::pipeline::Embedder`] and the detectors
//! [`gem_core::pipeline::OutlierModel`], so Table I's grid composes
//! uniformly.

pub mod autoencoder;
pub mod deep_svdd;
pub mod feature_bagging;
pub mod graphsage;
pub mod iforest;
pub mod inoa;
pub mod lof;
pub mod mds;
pub mod signature_home;
pub mod svdd;

pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use deep_svdd::{DeepSvdd, DeepSvddConfig};
pub use feature_bagging::FeatureBagging;
pub use graphsage::{GraphSage, GraphSageConfig};
pub use iforest::IsolationForest;
pub use inoa::{Inoa, InoaConfig};
pub use lof::Lof;
pub use mds::Mds;
pub use signature_home::{SignatureHome, SignatureHomeConfig};
pub use svdd::Svdd;
