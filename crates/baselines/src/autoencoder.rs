//! Autoencoder baseline ("Autoencoder + OD").
//!
//! The paper's comparison converts the records into a padded matrix
//! (missing entries at −120 dBm) and trains an autoencoder whose best
//! configuration used four 1-D convolution layers with ReLU. We mirror
//! that: a conv1d encoder (two conv layers over the MAC axis) feeding a
//! dense bottleneck, and a dense decoder; for very small MAC universes a
//! dense-only encoder is used. The bottleneck is the embedding handed to
//! the outlier detector.

use gem_core::pipeline::Embedder;
use gem_nn::layers::{Conv1dLayer, Dense};
use gem_nn::tape::{Activation, Graph, ParamStore, Var};
use gem_nn::{Adam, Optimizer, Tensor};
use gem_signal::rng::child_rng;
use gem_signal::{PaddedMatrix, RecordSet, SignalRecord, RSS_PAD_DBM};

/// Autoencoder hyperparameters.
#[derive(Clone, Debug)]
pub struct AutoencoderConfig {
    /// Bottleneck (embedding) dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Pad value for missing RSS entries (paper: −120 dBm).
    pub pad_dbm: f32,
    /// Use the conv1d encoder when the MAC universe is at least this wide.
    pub conv_min_width: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        AutoencoderConfig {
            dim: 32,
            epochs: 60,
            batch_size: 32,
            learning_rate: 0.003,
            pad_dbm: RSS_PAD_DBM,
            conv_min_width: 16,
            seed: 42,
        }
    }
}

enum Encoder {
    Conv { c1: Conv1dLayer, c2: Conv1dLayer, to_code: Dense },
    Dense { d1: Dense, to_code: Dense },
}

/// The fitted autoencoder, usable as a streaming [`Embedder`].
pub struct Autoencoder {
    /// Hyperparameters.
    pub cfg: AutoencoderConfig,
    universe: PaddedMatrix,
    store: ParamStore,
    encoder: Encoder,
    decoder1: Dense,
    decoder2: Dense,
}

impl Autoencoder {
    /// Normalizes a padded dBm row to roughly `[0, 1]`.
    fn normalize(pad: f32, row: &[f32]) -> Vec<f32> {
        row.iter().map(|&v| (v - pad) / 100.0).collect()
    }

    /// Fits the autoencoder; returns the model and training embeddings.
    pub fn fit(cfg: AutoencoderConfig, train: &RecordSet) -> (Autoencoder, Tensor) {
        assert!(!train.is_empty(), "autoencoder needs training data");
        let universe = train.to_matrix(cfg.pad_dbm);
        let width = universe.cols().max(1);
        let n = universe.rows;
        let mut x = Tensor::zeros(n, width);
        for i in 0..n {
            x.set_row(i, &Self::normalize(cfg.pad_dbm, universe.row(i)));
        }

        let mut rng = child_rng(cfg.seed, 0xAE01);
        let mut store = ParamStore::new();
        let encoder = if width >= cfg.conv_min_width {
            let c1 = Conv1dLayer::new(&mut store, "enc.c1", 1, 4, 5, 2, Activation::Relu, &mut rng);
            let w1 = c1.out_len(width);
            let c2 = Conv1dLayer::new(&mut store, "enc.c2", 4, 8, 3, 2, Activation::Relu, &mut rng);
            let w2 = c2.out_len(w1);
            let to_code =
                Dense::new(&mut store, "enc.code", 8 * w2, cfg.dim, Activation::Identity, &mut rng);
            Encoder::Conv { c1, c2, to_code }
        } else {
            let hidden = (2 * width).max(cfg.dim);
            let d1 = Dense::new(&mut store, "enc.d1", width, hidden, Activation::Relu, &mut rng);
            let to_code =
                Dense::new(&mut store, "enc.code", hidden, cfg.dim, Activation::Identity, &mut rng);
            Encoder::Dense { d1, to_code }
        };
        let hidden_dec = (width / 2).max(cfg.dim);
        let decoder1 =
            Dense::new(&mut store, "dec.d1", cfg.dim, hidden_dec, Activation::Relu, &mut rng);
        let decoder2 =
            Dense::new(&mut store, "dec.d2", hidden_dec, width, Activation::Identity, &mut rng);

        let mut model = Autoencoder { cfg, universe, store, encoder, decoder1, decoder2 };

        let mut opt = Adam::new(model.cfg.learning_rate);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..model.cfg.epochs {
            // Deterministic rotation instead of a full shuffle keeps the
            // training loop reproducible and cheap.
            order.rotate_left(1);
            for chunk in order.chunks(model.cfg.batch_size) {
                let mut batch = Tensor::zeros(chunk.len(), width);
                for (bi, &i) in chunk.iter().enumerate() {
                    batch.set_row(bi, x.row(i));
                }
                let mut g = Graph::new();
                let input = g.constant(batch.clone());
                let code = model.encode_var(&mut g, input);
                let recon = model.decode_var(&mut g, code);
                let loss = g.mse_mean(recon, batch);
                g.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
                model.store.zero_grads();
            }
        }

        let mut train_embeddings = Tensor::zeros(n, model.cfg.dim);
        for i in 0..n {
            let code = model.encode_row(x.row(i));
            train_embeddings.set_row(i, &code);
        }
        (model, train_embeddings)
    }

    fn encode_var(&self, g: &mut Graph, input: Var) -> Var {
        match &self.encoder {
            Encoder::Conv { c1, c2, to_code, .. } => {
                let h1 = c1.forward(g, &self.store, input);
                let h2 = c2.forward(g, &self.store, h1);
                to_code.forward(g, &self.store, h2)
            }
            Encoder::Dense { d1, to_code } => {
                let h = d1.forward(g, &self.store, input);
                to_code.forward(g, &self.store, h)
            }
        }
    }

    fn decode_var(&self, g: &mut Graph, code: Var) -> Var {
        let h = self.decoder1.forward(g, &self.store, code);
        self.decoder2.forward(g, &self.store, h)
    }

    fn encode_row(&self, normalized: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let input = g.constant(Tensor::from_vec(1, normalized.len(), normalized.to_vec()));
        let code = self.encode_var(&mut g, input);
        g.value(code).row(0).to_vec()
    }

    /// Mean reconstruction error on a normalized row (diagnostic).
    pub fn reconstruction_error(&self, normalized: &[f32]) -> f32 {
        let mut g = Graph::new();
        let t = Tensor::from_vec(1, normalized.len(), normalized.to_vec());
        let input = g.constant(t.clone());
        let code = self.encode_var(&mut g, input);
        let recon = self.decode_var(&mut g, code);
        let loss = g.mse_mean(recon, t);
        g.value(loss)[(0, 0)]
    }
}

impl Embedder for Autoencoder {
    fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
        if record.is_empty() {
            return None;
        }
        let (row, dropped) = self.universe.project(record);
        if dropped == record.len() {
            return None; // no overlap with the training MAC universe
        }
        Some(self.encode_row(&Self::normalize(self.cfg.pad_dbm, &row)))
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::MacAddr;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn records(n_macs: u64, n: usize) -> RecordSet {
        (0..n)
            .map(|i| {
                SignalRecord::from_pairs(
                    i as f64,
                    (1..=n_macs).map(|m| (mac(m), -40.0 - (m as f32 * 2.0) - (i % 4) as f32)),
                )
            })
            .collect()
    }

    #[test]
    fn conv_encoder_reconstructs_training_data() {
        let train = records(24, 40);
        let cfg = AutoencoderConfig { epochs: 80, ..AutoencoderConfig::default() };
        let (model, emb) = Autoencoder::fit(cfg, &train);
        assert!(matches!(model.encoder, Encoder::Conv { .. }));
        assert_eq!(emb.rows(), 40);
        assert_eq!(emb.cols(), 32);
        let m = train.to_matrix(RSS_PAD_DBM);
        let err = model.reconstruction_error(&Autoencoder::normalize(RSS_PAD_DBM, m.row(0)));
        assert!(err < 0.01, "reconstruction error {err}");
    }

    #[test]
    fn dense_fallback_for_tiny_universe() {
        let train = records(4, 20);
        let (model, emb) = Autoencoder::fit(AutoencoderConfig::default(), &train);
        assert!(matches!(model.encoder, Encoder::Dense { .. }));
        assert_eq!(emb.rows(), 20);
    }

    #[test]
    fn embeds_new_and_rejects_disjoint() {
        let train = records(24, 30);
        let (mut model, _) = Autoencoder::fit(AutoencoderConfig::default(), &train);
        let known = SignalRecord::from_pairs(0.0, [(mac(1), -45.0), (mac(2), -50.0)]);
        assert_eq!(model.embed(&known).unwrap().len(), 32);
        let alien = SignalRecord::from_pairs(0.0, [(mac(900), -45.0)]);
        assert!(model.embed(&alien).is_none());
        assert!(model.embed(&SignalRecord::new(0.0)).is_none());
    }

    #[test]
    fn similar_records_embed_nearby() {
        let train = records(24, 40);
        let (mut model, _) = Autoencoder::fit(AutoencoderConfig::default(), &train);
        let a = model
            .embed(&SignalRecord::from_pairs(
                0.0,
                (1..=24).map(|m| (mac(m), -40.0 - m as f32 * 2.0)),
            ))
            .unwrap();
        let b = model
            .embed(&SignalRecord::from_pairs(
                0.0,
                (1..=24).map(|m| (mac(m), -41.0 - m as f32 * 2.0)),
            ))
            .unwrap();
        let c =
            model.embed(&SignalRecord::from_pairs(0.0, (1..=3).map(|m| (mac(m), -90.0)))).unwrap();
        let d2 = |x: &[f32], y: &[f32]| -> f32 {
            x.iter().zip(y).map(|(&p, &q)| (p - q) * (p - q)).sum()
        };
        assert!(d2(&a, &b) < d2(&a, &c));
    }
}
