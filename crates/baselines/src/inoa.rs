//! INOA baseline (Chow et al., locality classification): converts each
//! variable-size record into per-MAC-pair sub-records of RSS values and
//! classifies with support vector data description.
//!
//! For every pair of MACs `(m₁, m₂)` sensed together often enough in the
//! training data, a 2-D SVDD is fitted on the observed `(rss₁, rss₂)`
//! points. A streamed record is in-premises when a sufficient fraction
//! of its known pair sub-records fall inside their balls.

use std::collections::HashMap;

use gem_signal::{Label, MacAddr, RecordSet, SignalRecord};

use crate::svdd::Svdd;

/// INOA hyperparameters.
#[derive(Clone, Debug)]
pub struct InoaConfig {
    /// Minimum co-occurrences for a MAC pair to get a model.
    pub min_support: usize,
    /// Keep at most this many highest-support pairs.
    pub max_pairs: usize,
    /// Fraction of accepted sub-records needed to call a record In.
    pub accept_fraction: f64,
    /// Frank–Wolfe iterations per SVDD.
    pub svdd_iterations: usize,
    /// Slack margin on each ball's squared radius.
    pub svdd_margin: f64,
    /// Soft-margin fraction ν: this share of training sub-records may
    /// fall outside their ball (Tax & Duin's slack).
    pub svdd_nu: f64,
    /// RSS scaling applied before SVDD (dB → unit-ish scale).
    pub rss_scale: f32,
}

impl Default for InoaConfig {
    fn default() -> Self {
        InoaConfig {
            min_support: 8,
            max_pairs: 400,
            accept_fraction: 0.5,
            svdd_iterations: 120,
            svdd_margin: 1.0,
            svdd_nu: 0.1,
            rss_scale: 1.0 / 30.0,
        }
    }
}

/// The fitted INOA system.
pub struct Inoa {
    /// Configuration.
    pub cfg: InoaConfig,
    models: HashMap<(MacAddr, MacAddr), Svdd>,
}

/// A canonical (sorted) MAC pair with its 2-D scaled RSS point.
type PairPoint = ((MacAddr, MacAddr), Vec<f32>);

fn pair_points(record: &SignalRecord, scale: f32) -> Vec<PairPoint> {
    let mut out = Vec::new();
    let rs = &record.readings;
    for i in 0..rs.len() {
        for j in (i + 1)..rs.len() {
            let (a, b) = if rs[i].mac < rs[j].mac { (i, j) } else { (j, i) };
            out.push(((rs[a].mac, rs[b].mac), vec![rs[a].rssi * scale, rs[b].rssi * scale]));
        }
    }
    out
}

impl Inoa {
    /// Fits per-pair SVDD models from the training records.
    pub fn fit(cfg: InoaConfig, train: &RecordSet) -> Self {
        let mut by_pair: HashMap<(MacAddr, MacAddr), Vec<Vec<f32>>> = HashMap::new();
        for rec in train {
            for (pair, point) in pair_points(rec, cfg.rss_scale) {
                by_pair.entry(pair).or_default().push(point);
            }
        }
        type PairGroup = ((MacAddr, MacAddr), Vec<Vec<f32>>);
        let mut eligible: Vec<PairGroup> =
            by_pair.into_iter().filter(|(_, pts)| pts.len() >= cfg.min_support).collect();
        // Keep the highest-support pairs (stable order for determinism).
        eligible.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        eligible.truncate(cfg.max_pairs);
        let models = eligible
            .into_iter()
            .map(|(pair, pts)| {
                let gamma = Svdd::median_gamma(&pts);
                (
                    pair,
                    Svdd::fit_soft(&pts, gamma, cfg.svdd_iterations, cfg.svdd_margin, cfg.svdd_nu),
                )
            })
            .collect();
        Inoa { cfg, models }
    }

    /// Number of fitted pair models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Fraction of a record's known pair sub-records accepted by their
    /// balls; `None` when the record has no modeled pair.
    pub fn accepted_fraction(&self, record: &SignalRecord) -> Option<f64> {
        let mut known = 0usize;
        let mut accepted = 0usize;
        for (pair, point) in pair_points(record, self.cfg.rss_scale) {
            if let Some(model) = self.models.get(&pair) {
                known += 1;
                if model.contains(&point) {
                    accepted += 1;
                }
            }
        }
        if known == 0 {
            None
        } else {
            Some(accepted as f64 / known as f64)
        }
    }

    /// Classifies a record; the score is `1 − accepted fraction`
    /// (1.0 when the record has no modeled pair at all).
    pub fn infer(&self, record: &SignalRecord) -> (Label, f64) {
        match self.accepted_fraction(record) {
            None => (Label::Out, 1.0),
            Some(frac) => {
                let label = if frac >= self.cfg.accept_fraction { Label::In } else { Label::Out };
                (label, 1.0 - frac)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn train() -> RecordSet {
        (0..30)
            .map(|i| {
                let j = (i % 3) as f32;
                SignalRecord::from_pairs(
                    i as f64,
                    [(mac(1), -50.0 - j), (mac(2), -60.0 + j), (mac(3), -70.0)],
                )
            })
            .collect()
    }

    #[test]
    fn fits_pair_models() {
        let inoa = Inoa::fit(InoaConfig::default(), &train());
        assert_eq!(inoa.n_models(), 3); // (1,2), (1,3), (2,3)
    }

    #[test]
    fn accepts_training_like_records() {
        let inoa = Inoa::fit(InoaConfig::default(), &train());
        let rec =
            SignalRecord::from_pairs(0.0, [(mac(1), -51.0), (mac(2), -59.0), (mac(3), -70.0)]);
        let (label, score) = inoa.infer(&rec);
        assert_eq!(label, Label::In);
        assert!(score < 0.5);
    }

    #[test]
    fn rejects_shifted_rss_profiles() {
        let inoa = Inoa::fit(InoaConfig::default(), &train());
        // Same MACs, drastically different strengths (e.g. next door).
        let rec =
            SignalRecord::from_pairs(0.0, [(mac(1), -90.0), (mac(2), -20.0), (mac(3), -95.0)]);
        let (label, _) = inoa.infer(&rec);
        assert_eq!(label, Label::Out);
    }

    #[test]
    fn unknown_pairs_are_outliers() {
        let inoa = Inoa::fit(InoaConfig::default(), &train());
        let rec = SignalRecord::from_pairs(0.0, [(mac(8), -50.0), (mac(9), -60.0)]);
        let (label, score) = inoa.infer(&rec);
        assert_eq!(label, Label::Out);
        assert_eq!(score, 1.0);
        assert!(inoa.accepted_fraction(&rec).is_none());
    }

    #[test]
    fn min_support_filters_rare_pairs() {
        let mut rs = train();
        // One record with a rare extra MAC → pairs with support 1.
        rs.push(SignalRecord::from_pairs(99.0, [(mac(1), -50.0), (mac(42), -70.0)]));
        let inoa = Inoa::fit(InoaConfig::default(), &rs);
        assert_eq!(inoa.n_models(), 3, "rare pair must not get a model");
    }
}
