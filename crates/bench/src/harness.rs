//! Scenario presets and streaming evaluation helpers.

use std::env;
use std::path::PathBuf;

use gem_core::{Gem, GemConfig};
use gem_eval::Confusion;
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_signal::{Dataset, Label, LabeledRecord};

/// Global experiment knobs, resolved from the environment once.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Repetitions for randomized experiments (`GEM_RUNS`, default 5).
    pub runs: usize,
    /// Grid points per axis for Fig. 13 (`GEM_GRID`, default 3).
    pub grid: usize,
    /// Output directory for result tables.
    pub out_dir: PathBuf,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Reads `GEM_RUNS` / `GEM_GRID` / `GEM_OUT` from the environment.
    pub fn from_env() -> Self {
        let parse = |key: &str, default: usize| {
            env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Harness {
            runs: parse("GEM_RUNS", 5).max(1),
            grid: parse("GEM_GRID", 3).max(2),
            out_dir: env::var("GEM_OUT").map(PathBuf::from).unwrap_or_else(|_| "results".into()),
        }
    }
}

/// The ten Table-II users, sized for tractable single-core evaluation:
/// ~5 minutes of training walk and a 150 + 150 test stream.
pub fn evaluation_users() -> Vec<ScenarioConfig> {
    (1..=10)
        .map(|uid| {
            let mut cfg = ScenarioConfig::user(uid);
            cfg.train_duration_s = 300.0;
            cfg.n_test_in = 150;
            cfg.n_test_out = 150;
            cfg
        })
        .collect()
}

/// The lab scenario (Section VI-D experiments), same sizing.
pub fn lab_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::lab();
    cfg.train_duration_s = 300.0;
    cfg.n_test_in = 150;
    cfg.n_test_out = 150;
    cfg
}

/// Streams a labeled test set through a closure and accumulates the
/// confusion matrix.
pub fn eval_stream(
    test: &[LabeledRecord],
    mut infer: impl FnMut(&gem_signal::SignalRecord) -> Label,
) -> Confusion {
    let mut confusion = Confusion::default();
    for t in test {
        confusion.record(t.label, infer(&t.record));
    }
    confusion
}

/// Fits GEM with `cfg` on a dataset and streams the whole test set.
pub fn eval_gem(cfg: GemConfig, ds: &Dataset) -> Confusion {
    let mut gem = Gem::fit(cfg, &ds.train);
    eval_stream(&ds.test, |rec| gem.infer(rec).label)
}

/// Builds and generates the dataset for a scenario config.
pub fn eval_dataset(cfg: &ScenarioConfig) -> Dataset {
    Scenario::build(cfg.clone()).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_env_defaults() {
        let h = Harness::from_env();
        assert!(h.runs >= 1);
        assert!(h.grid >= 2);
    }

    #[test]
    fn evaluation_users_are_sized_down() {
        let users = evaluation_users();
        assert_eq!(users.len(), 10);
        for u in &users {
            assert_eq!(u.n_test_in, 150);
            assert_eq!(u.n_test_out, 150);
        }
    }

    #[test]
    fn eval_stream_counts() {
        use gem_signal::{MacAddr, SignalRecord};
        let test = vec![
            LabeledRecord {
                record: SignalRecord::from_pairs(0.0, [(MacAddr::from_raw(1), -50.0)]),
                label: Label::In,
            },
            LabeledRecord { record: SignalRecord::new(1.0), label: Label::Out },
        ];
        let c = eval_stream(&test, |r| if r.is_empty() { Label::Out } else { Label::In });
        assert_eq!(c.in_in, 1);
        assert_eq!(c.out_out, 1);
    }
}
