//! Shared experiment harness for the reproduction binaries and benches.
//!
//! The heavy lifting lives here so the `experiments` binary stays a thin
//! dispatcher: scenario presets sized for the evaluation, the Table-I
//! algorithm registry, and streaming evaluation helpers.
//!
//! Replication counts are tunable via environment variables so a full
//! paper-scale run and a quick smoke run use the same code path:
//!
//! * `GEM_RUNS` — repetitions for randomized experiments (default 5;
//!   paper: 30);
//! * `GEM_GRID` — per-axis points of the Fig. 13 (p,q) grid (default 3;
//!   paper: 9).

pub mod algos;
pub mod allocs;
pub mod harness;

pub use algos::{run_algorithm, Algorithm};
pub use harness::{eval_dataset, eval_gem, evaluation_users, lab_scenario, Harness};
