//! Optional counting global allocator for allocation-budget benchmarks.
//!
//! Compiled with `--features count-allocs`, the whole benchmark process
//! routes heap traffic through [`CountingAllocator`], which wraps the
//! system allocator with four relaxed atomics: allocation count, bytes
//! requested, live bytes, and the high-water mark of live bytes. The
//! training benchmark windows the counters around optimizer step groups
//! (via `BiSage::fit_instrumented`) to report `allocs_per_step`, and
//! reads the high-water mark for `peak_bytes`.
//!
//! Without the feature this module still compiles — [`ENABLED`] is
//! `false` and the counters simply never move — so the bench harness
//! needs no `cfg` at its call sites.
//!
//! Counting uses `Relaxed` ordering throughout: the counters are
//! monotonic diagnostics sampled between steps on the same thread that
//! drives training, not a synchronization mechanism, and anything
//! stronger would tax the very allocations being counted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// True when the crate was built with the `count-allocs` feature and the
/// counters below actually record traffic.
pub const ENABLED: bool = cfg!(feature = "count-allocs");

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System-allocator wrapper that counts every allocation.
///
/// `dealloc` only shrinks the live-bytes gauge; `realloc` counts as one
/// allocation of the new size (the grow path of `Vec` et al.), matching
/// how a steady-state "zero allocations" claim should be audited: any
/// call that could touch the heap is counted.
pub struct CountingAllocator;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size as u64, Relaxed);
    let live = LIVE.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_alloc(new_size);
            LIVE.fetch_sub(layout.size(), Relaxed);
        }
        p
    }
}

#[cfg(feature = "count-allocs")]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Snapshot of the counters since the last [`reset`].
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct AllocStats {
    /// Heap calls (alloc + alloc_zeroed + realloc) observed.
    pub allocs: u64,
    /// Bytes those calls requested (cumulative, not live).
    pub bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
}

/// Zero the counters and re-seed the peak from the current live bytes,
/// so `peak_bytes` after a reset reflects growth within the measured
/// window, not history.
pub fn reset() {
    ALLOCS.store(0, Relaxed);
    BYTES.store(0, Relaxed);
    PEAK.store(LIVE.load(Relaxed), Relaxed);
}

/// Read the counters (cheap: three relaxed loads).
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        peak_bytes: PEAK.load(Relaxed) as u64,
    }
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    use super::*;

    #[test]
    fn counts_a_vec_allocation() {
        reset();
        let before = stats().allocs;
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = stats().allocs;
        assert!(after > before, "allocation not counted");
        assert!(stats().peak_bytes >= 4096);
        drop(v);
    }
}
