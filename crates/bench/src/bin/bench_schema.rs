//! Validate `BENCH_*.json` result files against the checked-in schemas
//! in `crates/bench/schemas/`.
//!
//! Every bench appends one JSON object per run, line-delimited. Each
//! line must carry a `"bench"` tag naming its schema, every field the
//! schema lists must be present with the right type (extra fields are
//! fine — benches grow), and array fields are validated element-wise.
//! A type prefixed with `?` (e.g. `"?number"`) marks the field
//! optional: it may be absent, but when present it must match — used
//! for conditionally-emitted fields like histogram quantiles, which
//! are omitted when the histogram is empty.
//!
//! ```text
//! cargo run -p gem-bench --bin bench_schema            # all BENCH_*.json at repo root
//! cargo run -p gem-bench --bin bench_schema -- FILE..  # explicit files
//! ```
//!
//! Exits 1 listing every violation, so CI catches a bench drifting from
//! its published format.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serde::Value;

fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn schema_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/schemas"))
}

/// `"string" | "number" | "bool" | "array" | "object"` from the schema.
fn type_matches(want: &str, value: &Value) -> bool {
    match want {
        "string" => matches!(value, Value::Str(_)),
        "number" => matches!(value, Value::U64(_) | Value::I64(_) | Value::F64(_)),
        "bool" => matches!(value, Value::Bool(_)),
        "array" => matches!(value, Value::Array(_)),
        "object" => matches!(value, Value::Object(_)),
        other => panic!("schema names unknown type {other:?}"),
    }
}

fn get<'a>(obj: &'a Value, key: &str) -> Option<&'a Value> {
    obj.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Check `line` against the field map `fields`; `what` labels errors.
fn check_fields(line: &Value, fields: &Value, what: &str, errors: &mut Vec<String>) {
    for (name, want) in fields.as_object().unwrap_or(&[]) {
        let want = want.as_str().expect("schema field types are strings");
        let (want, optional) = match want.strip_prefix('?') {
            Some(bare) => (bare, true),
            None => (want, false),
        };
        match get(line, name) {
            None if optional => {}
            None => errors.push(format!("{what}: missing field `{name}`")),
            Some(v) if !type_matches(want, v) => {
                errors.push(format!("{what}: field `{name}` is {}, schema wants {want}", v.kind()))
            }
            Some(_) => {}
        }
    }
}

fn validate_line(line_no: usize, raw: &str, errors: &mut Vec<String>) {
    let what = format!("line {line_no}");
    let value: Value = match serde_json::from_str(raw) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{what}: not valid JSON: {e:?}"));
            return;
        }
    };
    let Some(bench) = get(&value, "bench").and_then(Value::as_str) else {
        errors.push(format!("{what}: missing string `bench` tag"));
        return;
    };
    let schema_path = schema_dir().join(format!("{bench}.json"));
    let schema: Value = match std::fs::read_to_string(&schema_path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("schema {} is invalid JSON: {e:?}", schema_path.display())),
        Err(_) => {
            errors.push(format!("{what}: no schema for bench `{bench}` in crates/bench/schemas/"));
            return;
        }
    };
    check_fields(&value, get(&schema, "fields").unwrap_or(&Value::Null), &what, errors);
    // Element-wise validation of array fields the schema describes.
    for (field, item_schema) in get(&schema, "arrays").and_then(Value::as_object).unwrap_or(&[]) {
        let Some(Value::Array(items)) = get(&value, field) else { continue };
        for (i, item) in items.iter().enumerate() {
            check_fields(item, item_schema, &format!("{what}: {field}[{i}]"), errors);
        }
    }
}

fn validate_file(path: &Path) -> Vec<String> {
    let mut errors = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {}: {e}", path.display())],
    };
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        validate_line(i + 1, line, &mut errors);
    }
    if lines == 0 {
        errors.push("file is empty (expected at least one result line)".into());
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(spec: &str) -> Value {
        serde_json::from_str(spec).unwrap()
    }

    #[test]
    fn optional_fields_may_be_absent_but_must_type_check() {
        let schema = fields("{\"count\":\"number\",\"p50_ns\":\"?number\"}");
        let mut errors = Vec::new();
        check_fields(&fields("{\"count\":0}"), &schema, "t", &mut errors);
        assert!(errors.is_empty(), "absent optional field must pass: {errors:?}");
        check_fields(&fields("{\"count\":1,\"p50_ns\":42}"), &schema, "t", &mut errors);
        assert!(errors.is_empty(), "present optional field must pass: {errors:?}");
        check_fields(&fields("{\"count\":1,\"p50_ns\":\"no\"}"), &schema, "t", &mut errors);
        assert_eq!(errors.len(), 1, "mistyped optional field must fail");
        assert!(errors[0].contains("p50_ns"), "{errors:?}");
    }

    #[test]
    fn required_fields_still_fail_when_missing() {
        let schema = fields("{\"count\":\"number\"}");
        let mut errors = Vec::new();
        check_fields(&fields("{}"), &schema, "t", &mut errors);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("missing field `count`"), "{errors:?}");
    }
}

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let files: Vec<PathBuf> = if args.is_empty() {
        let mut found: Vec<PathBuf> = std::fs::read_dir(repo_root())
            .expect("read repo root")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        found.sort();
        found
    } else {
        args
    };
    if files.is_empty() {
        eprintln!("bench-schema: no BENCH_*.json files found");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let errors = validate_file(file);
        if errors.is_empty() {
            println!("bench-schema: {} OK", file.display());
        } else {
            failed = true;
            eprintln!("bench-schema: {} FAILED", file.display());
            for e in errors {
                eprintln!("  {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
