//! Observability smoke test, sized for CI: train two small tenants,
//! run a durable fleet with full metrics on, serve its registry on a
//! real TCP port, then scrape `/metrics` and `/metrics.json` exactly
//! like a monitoring agent would and validate the exposition — format,
//! required metric names, and non-zero activity counters. The fleet
//! runs with request tracing fully on (`trace_sample: 1.0`), so the
//! smoke also drains `/trace.jsonl` and validates the span stream:
//! every record yields a six-stage span whose stages cover ≥90% of its
//! end-to-end time, and the decision-latency histogram's bucket
//! exemplars point back at real span trace ids. Also dumps the
//! per-shard decision-trace rings and checks the expected event kinds
//! showed up.
//!
//! The parsed `/metrics.json` scrape is appended to `BENCH_metrics.json`
//! at the repo root (tagged `"bench": "metrics"`), so `bench_schema`
//! validates the JSON exposition against `crates/bench/schemas/`.
//!
//! Exits non-zero (panics) on any violation. `GEM_BENCH_QUICK=1`
//! shrinks tenant training.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use gem_core::{Gem, GemConfig};
use gem_obs::MetricsServer;
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Fleet, FleetConfig, Monitor, MonitorConfig, ObsOptions};
use gem_signal::SignalRecord;

/// Every metric family the fleet promises to expose (ISSUE acceptance
/// list). All are registered at spawn, so each must appear in a scrape
/// even when its value is still zero.
const REQUIRED_METRICS: &[&str] = &[
    "gem_fleet_submitted_total",
    "gem_fleet_admission_total",
    "gem_shard_epochs_total",
    "gem_shard_epoch_seconds",
    "gem_shard_decision_latency_seconds",
    "gem_shard_queue_depth",
    "gem_shard_dropped_events_total",
    "gem_shard_snapshot_seconds",
    "gem_shard_busy_ns_total",
    "gem_shard_idle_ns_total",
    "gem_journal_append_seconds",
    "gem_journal_fsync_seconds",
    "gem_journal_retain_seconds",
    "gem_journal_appends_total",
    "gem_journal_bytes_total",
    "gem_monitor_decisions_total",
    "gem_monitor_alerts_total",
    "gem_monitor_self_updates_total",
    "gem_monitor_epochs_total",
    "gem_infer_cache_events_total",
    "gem_shard_hot_premises",
    "gem_shard_cold_premises",
    "gem_shard_evictions_total",
    "gem_shard_hydrations_total",
    "gem_premises_hydrate_seconds",
    "gem_fleet_snapshot_errors_total",
    "gem_trace_dropped_total",
];

fn quick() -> bool {
    std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1")
}

fn tenants() -> (Vec<(u64, Monitor)>, Vec<Vec<SignalRecord>>) {
    let mut monitors = Vec::new();
    let mut streams = Vec::new();
    for user in 1..=2u32 {
        let mut cfg = ScenarioConfig::user(user);
        cfg.train_duration_s = if quick() { 90.0 } else { 180.0 };
        cfg.n_test_in = 12;
        cfg.n_test_out = 12;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        monitors.push((user as u64 * 11 + 2, Monitor::new(gem, MonitorConfig::default())));
        streams.push(ds.test.iter().map(|t| t.record.clone()).collect());
    }
    (monitors, streams)
}

/// One HTTP GET against the metrics server, the way `curl` would do it.
/// Returns (status line, headers, body).
fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response has a header block");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Validates the Prometheus text exposition: every line is a comment or
/// a `name{labels} value` sample with a parseable float value.
fn check_exposition(text: &str) {
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("malformed sample line: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "sample value must be numeric: {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition has no samples");
}

fn main() {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs-smoke"));
    let _ = std::fs::remove_dir_all(&dir);

    println!("training 2 tenants...");
    let (monitors, streams) = tenants();
    let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();
    // A hot cap of one resident premises per shard makes the tiering
    // instruments (gauges, eviction/hydration counters, hydrate
    // histogram) carry real churn whenever both tenants share a shard.
    let cfg = FleetConfig {
        shards: 2,
        max_batch: 4,
        dir: Some(dir.clone()),
        hot_premises_per_shard: Some(1),
        // Trace every record: the span checks below want full coverage,
        // not a sampled subset.
        obs: ObsOptions { trace_sample: 1.0, ..ObsOptions::default() },
        ..FleetConfig::default()
    };
    let fleet = Fleet::spawn(monitors, cfg).unwrap();
    let server = MetricsServer::bind_with_traces("127.0.0.1:0", fleet.registry(), fleet.trace_rings())
        .expect("bind metrics");
    let addr = server.local_addr();
    println!("metrics on http://{addr}/metrics");

    // Stream every held-out record, then snapshot: exercises admission,
    // epochs, the journal (append + fsync + retain), the snapshot path
    // and the per-premises monitor counters.
    for (id, stream) in ids.iter().zip(&streams) {
        for record in stream {
            assert!(fleet.submit(*id, record.clone()).accepted(), "smoke submit shed");
        }
    }
    fleet.flush().unwrap();
    fleet.snapshot().unwrap();
    while fleet.events().try_recv().is_ok() {}

    // Tiering invariants: the hot gauges respect the cap, every tenant
    // is accounted hot or cold, and co-located tenants really churned.
    let stats = fleet.fleet_stats();
    let mut accounted = 0i64;
    for s in &stats.shards {
        assert!(s.hot_premises <= 1, "hot tier must respect the cap: {s:?}");
        accounted += s.hot_premises + s.cold_premises;
    }
    assert_eq!(accounted as usize, ids.len(), "every premises is hot or cold");
    if stats.shards.iter().any(|s| s.hot_premises + s.cold_premises == 2) {
        assert!(
            stats.shards.iter().any(|s| s.evictions > 0 && s.hydrations > 0),
            "two tenants over a cap of 1 must evict and hydrate: {:?}",
            stats.shards
        );
    }
    assert_eq!(stats.snapshot_errors, 0, "snapshot rounds must not error");

    // --- /metrics: Prometheus text exposition ---
    let (status, headers, body) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "GET /metrics: {status}");
    assert!(
        headers.to_ascii_lowercase().contains("text/plain"),
        "text exposition content type: {headers}"
    );
    check_exposition(&body);
    for name in REQUIRED_METRICS {
        assert!(
            body.lines().any(|l| l.starts_with(name) && !l.starts_with('#')),
            "scrape is missing required metric {name}"
        );
        assert!(
            body.contains(&format!("# TYPE {name} ")),
            "scrape is missing # TYPE line for {name}"
        );
    }
    // Activity flowed through the pipeline, not just registration. The
    // counter is per shard (plus a `shard="unknown"` series); the fleet
    // total is the sum over the family.
    let submitted: f64 = body
        .lines()
        .filter(|l| l.starts_with("gem_fleet_submitted_total"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum();
    let total: usize = streams.iter().map(Vec::len).sum();
    assert_eq!(submitted as usize, total, "submitted counters must sum to the workload");
    println!("/metrics OK: {} samples, {submitted} submissions", body.lines().count());

    // --- /metrics.json: JSON dump ---
    let (status, headers, json_body) = scrape(addr, "/metrics.json");
    assert!(status.contains("200"), "GET /metrics.json: {status}");
    assert!(
        headers.to_ascii_lowercase().contains("application/json"),
        "json content type: {headers}"
    );
    let parsed: serde::Value = serde_json::from_str(&json_body).expect("metrics.json parses");
    for section in ["counters", "gauges", "histograms"] {
        let entries = parsed
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == section))
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing {section} section"));
        assert!(
            entries.as_array().is_some_and(|a| !a.is_empty()),
            "{section} section must be a non-empty array"
        );
    }
    // A 404 route stays a 404.
    let (status, _, _) = scrape(addr, "/nope");
    assert!(status.contains("404"), "unknown path must 404: {status}");
    println!("/metrics.json OK ({} bytes)", json_body.len());

    // --- /trace.jsonl: request spans + operational events ---
    // This drains the rings, so it must run before dump_traces below.
    let (status, headers, trace_body) = scrape(addr, "/trace.jsonl");
    assert!(status.contains("200"), "GET /trace.jsonl: {status}");
    assert!(
        headers.to_ascii_lowercase().contains("application/x-ndjson"),
        "jsonl content type: {headers}"
    );
    let mut kinds: Vec<String> = Vec::new();
    let mut span_ids: Vec<String> = Vec::new();
    let total: usize = streams.iter().map(Vec::len).sum();
    for line in trace_body.lines() {
        let event: serde::Value = serde_json::from_str(line).expect("trace.jsonl line parses");
        let field = |key: &str| {
            event.as_object().and_then(|o| o.iter().find(|(k, _)| k == key)).map(|(_, v)| v)
        };
        let kind = field("kind").and_then(|v| v.as_str()).expect("trace event has a kind");
        kinds.push(kind.to_string());
        if kind != "span" {
            continue;
        }
        // Every span carries the full six-stage attribution, and the
        // stages account for (at least) 90% of the end-to-end time —
        // with the exact-telescoping stamps they sum to ~100%.
        let ns = |key: &str| {
            field(key)
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("span missing {key}: {line}"))
        };
        let staged = ns("ingress_ns")
            + ns("queue_ns")
            + ns("hydrate_ns")
            + ns("journal_ns")
            + ns("infer_ns")
            + ns("emit_ns");
        let e2e = ns("e2e_ns");
        assert!(
            staged as f64 >= e2e as f64 * 0.90,
            "span stages must cover >=90% of e2e ({staged} of {e2e} ns): {line}"
        );
        let trace = field("trace").and_then(|v| v.as_str()).expect("span has a trace id");
        assert!(trace.len() == 16 && trace != "0000000000000000", "bad trace id: {line}");
        span_ids.push(trace.to_string());
    }
    assert_eq!(
        span_ids.len(),
        total,
        "trace_sample 1.0 must retain a span for every submitted record"
    );
    for required in ["epoch", "journal_append", "journal_retain", "snapshot"] {
        assert!(
            kinds.iter().any(|k| k == required),
            "trace rings must contain a {required:?} event (got {kinds:?})"
        );
    }
    // The decision-latency histogram's bucket exemplars must point back
    // at spans that were actually retained in the drain above.
    let exemplars: Vec<&str> = json_body
        .split("\"exemplar\":\"")
        .skip(1)
        .map(|rest| &rest[..16])
        .collect();
    assert!(!exemplars.is_empty(), "traced run must expose at least one bucket exemplar");
    for ex in &exemplars {
        assert!(
            span_ids.iter().any(|id| id == ex),
            "exemplar {ex} does not match any retained span ({} spans)",
            span_ids.len()
        );
    }
    println!(
        "/trace.jsonl OK: {} spans across {} events, {} exemplars resolved",
        span_ids.len(),
        kinds.len(),
        exemplars.len()
    );

    // --- decision traces (file dump) ---
    // The /trace.jsonl drain above emptied the rings; another snapshot
    // round refills them so the dump has something real to write.
    fleet.snapshot().unwrap();
    let trace_dir = dir.join("traces");
    let paths = fleet.dump_traces(&trace_dir).unwrap();
    assert_eq!(paths.len(), 2, "one trace file per shard");
    let mut dump_kinds: Vec<String> = Vec::new();
    for path in &paths {
        for line in std::fs::read_to_string(path).unwrap().lines() {
            let event: serde::Value = serde_json::from_str(line).expect("trace line parses");
            let kind = event
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "kind"))
                .and_then(|(_, v)| v.as_str())
                .expect("trace event has a kind");
            dump_kinds.push(kind.to_string());
        }
    }
    assert!(
        dump_kinds.iter().any(|k| k == "snapshot"),
        "trace dump must contain the fresh snapshot event (got {dump_kinds:?})"
    );
    println!("traces OK: {} events across {} shards", dump_kinds.len(), paths.len());

    fleet.shutdown().unwrap();
    drop(server);

    // Tag and append the JSON scrape so bench_schema validates the
    // exposition shape against crates/bench/schemas/metrics.json.
    let line = format!("{{\"bench\":\"metrics\",{}", &json_body[1..]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_metrics.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out)
        .expect("open BENCH_metrics.json");
    writeln!(f, "{line}").expect("append BENCH_metrics.json");
    println!("appended scrape to {out}");

    let _ = std::fs::remove_dir_all(&dir);
    println!("obs-smoke: PASS");
}
