//! Kill-and-recover smoke test for the sharded fleet runtime, sized for
//! CI: train two small tenants, stream chunks through a durable fleet,
//! snapshot mid-stream, abort without shutdown (the "kill"), then
//! recover from the manifest + write-ahead journal and assert the
//! replayed and resumed decisions are bitwise identical to an
//! uninterrupted reference run.
//!
//! Exits non-zero (panics) on any divergence. `GEM_BENCH_QUICK=1`
//! shrinks tenant training further.

use std::path::PathBuf;

use gem_core::{Gem, GemConfig};
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Fleet, FleetConfig, FleetEvent, Monitor, MonitorConfig};
use gem_signal::SignalRecord;

const CHUNK: usize = 4;

fn quick() -> bool {
    std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1")
}

/// Two freshly trained tenants with their held-out streams. Training is
/// deterministic, so calling this twice yields identical monitors.
fn tenants() -> (Vec<(u64, Monitor)>, Vec<Vec<SignalRecord>>) {
    let mut monitors = Vec::new();
    let mut streams = Vec::new();
    for user in 1..=2u32 {
        let mut cfg = ScenarioConfig::user(user);
        cfg.train_duration_s = if quick() { 90.0 } else { 180.0 };
        cfg.n_test_in = 12;
        cfg.n_test_out = 12;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        monitors.push((user as u64 * 11 + 2, Monitor::new(gem, MonitorConfig::default())));
        streams.push(ds.test.iter().map(|t| t.record.clone()).collect());
    }
    (monitors, streams)
}

fn drain(fleet: &Fleet) -> Vec<FleetEvent> {
    let mut out = Vec::new();
    while let Ok(e) = fleet.events().try_recv() {
        out.push(e);
    }
    out
}

fn decisions_of(events: &[FleetEvent], premises: u64) -> Vec<Event> {
    events
        .iter()
        .filter(|e| e.premises_id == premises && matches!(e.event, Event::Decision { .. }))
        .map(|e| e.event.clone())
        .collect()
}

/// Submit chunk `chunk` of every stream under pause, flush, and return
/// the drained events.
fn feed_chunk(
    fleet: &Fleet,
    ids: &[u64],
    streams: &[Vec<SignalRecord>],
    chunk: usize,
) -> Vec<FleetEvent> {
    fleet.pause();
    for (id, stream) in ids.iter().zip(streams) {
        for record in stream.iter().skip(chunk * CHUNK).take(CHUNK) {
            assert!(fleet.submit(*id, record.clone()).accepted(), "smoke submit shed");
        }
    }
    fleet.flush().unwrap();
    let events = drain(fleet);
    fleet.resume();
    events
}

fn main() {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/fleet-smoke"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FleetConfig {
        shards: 2,
        max_batch: CHUNK,
        dir: Some(dir.clone()),
        ..FleetConfig::default()
    };

    println!("training 2 tenants...");
    let (monitors, streams) = tenants();
    let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();

    // Reference: the same stream with no interruption.
    println!("reference run (uninterrupted)...");
    let ref_fleet = Fleet::spawn(monitors, FleetConfig { dir: None, ..cfg.clone() }).unwrap();
    let mut ref_events = Vec::new();
    for chunk in 0..4 {
        ref_events.extend(feed_chunk(&ref_fleet, &ids, &streams, chunk));
    }
    ref_fleet.shutdown().unwrap();

    // Durable run: chunks 0-1, snapshot, chunk 2 lands only in the
    // journal, then the process "dies" (abort: no shutdown snapshot).
    println!("durable run: 2 chunks, snapshot, 1 journaled chunk, kill...");
    let (monitors, _) = tenants();
    let fleet = Fleet::spawn(monitors, cfg.clone()).unwrap();
    let mut live_events = Vec::new();
    for chunk in 0..3 {
        live_events.extend(feed_chunk(&fleet, &ids, &streams, chunk));
        if chunk == 1 {
            fleet.snapshot().unwrap();
        }
    }
    fleet.abort();

    println!("recovering from {}...", dir.display());
    let recovery = Fleet::recover(cfg).unwrap();
    assert_eq!(recovery.replayed_epochs, 2, "expected one replayed epoch per premises");
    for id in &ids {
        let expected = decisions_of(&ref_events, *id);
        let mut pre_crash = decisions_of(&live_events, *id);
        pre_crash.truncate(2 * CHUNK);
        assert_eq!(pre_crash, expected[..2 * CHUNK].to_vec(), "pre-crash decisions diverged");
        assert_eq!(
            decisions_of(&recovery.replayed, *id),
            expected[2 * CHUNK..3 * CHUNK].to_vec(),
            "journal replay diverged for premises {id}"
        );
    }
    println!("replay bitwise-identical; resuming stream...");
    let fleet = recovery.fleet;
    let tail = feed_chunk(&fleet, &ids, &streams, 3);
    for id in &ids {
        let expected = decisions_of(&ref_events, *id);
        assert_eq!(
            decisions_of(&tail, *id),
            expected[3 * CHUNK..4 * CHUNK].to_vec(),
            "post-recovery decisions diverged for premises {id}"
        );
    }
    fleet.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    println!("fleet-smoke: PASS (kill-and-recover bitwise identical)");
}
