//! Cold-tier soak: can the fleet hold vastly more premises than fit in
//! memory?
//!
//! Builds ONE tiny seed model, manufactures a manifest in which 100k
//! premises (5k with `GEM_SOAK_QUICK=1`) all reference that seed
//! snapshot, then `Fleet::recover`s it — every premises spawns cold, so
//! startup reads one file no matter the tenant count. Round-robin
//! streaming over all premises with a small hot cap then forces
//! continuous spill/hydrate churn: every record lands on a cold
//! premises.
//!
//! Gates (panic = fail):
//! * **Cold spawn** — recovery replays nothing and RSS at spawn does not
//!   scale with the tenant count.
//! * **Bounded RSS** — growth over the whole run stays under a budget
//!   set by the hot tier, not the fleet size
//!   (`GEM_SOAK_RSS_MB` overrides).
//! * **Shed rate ≈ 0 / no drops** — a paced submitter (bounded
//!   outstanding records) never sees a shed, and no event is dropped.
//! * **No global pause** — p99 decision latency while snapshot rounds
//!   run concurrently stays within 2× of the snapshot-free p99 (plus a
//!   2 ms floor against sub-millisecond noise).
//!
//! Appends one tagged line to `BENCH_soak.json` at the repo root,
//! validated by `bench_schema` against `crates/bench/schemas/soak.json`.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use gem_core::{fnv1a64_hex, FleetManifest, Gem, GemConfig, GemSnapshot, PremisesEntry};
use gem_graph::WalkConfig;
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Fleet, FleetConfig, Monitor, MonitorConfig, ObsOptions};
use gem_signal::SignalRecord;

/// Outstanding (admitted, undecided) records the submitter allows
/// before it blocks on the event channel. Well under the ingress bound,
/// so admission never sheds; well under the event channel capacity, so
/// nothing drops.
const MAX_OUTSTANDING: usize = 512;

fn quick() -> bool {
    std::env::var("GEM_SOAK_QUICK").as_deref() == Ok("1")
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Resident set size in MB, from `/proc/self/status` (Linux).
fn rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 =
                rest.trim().trim_end_matches("kB").trim().parse().expect("VmRSS value parses");
            return kb / 1024.0;
        }
    }
    panic!("no VmRSS line in /proc/self/status");
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Drains every event currently available; decisions retire outstanding
/// records and contribute their latency. Blocks only when `outstanding`
/// exceeds the pacing bound.
fn pump(fleet: &Fleet, outstanding: &mut usize, latencies: &mut Vec<f64>) {
    while let Ok(e) = fleet.events().try_recv() {
        if matches!(e.event, Event::Decision { .. }) {
            *outstanding -= 1;
            latencies.push(e.latency_s);
        }
    }
    while *outstanding > MAX_OUTSTANDING {
        let e = fleet
            .events()
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("fleet stopped deciding while records were outstanding");
        if matches!(e.event, Event::Decision { .. }) {
            *outstanding -= 1;
            latencies.push(e.latency_s);
        }
    }
}

#[derive(serde::Serialize)]
struct SoakLine {
    bench: &'static str,
    quick: bool,
    premises: usize,
    hot_cap: usize,
    shards: usize,
    max_batch: usize,
    records_per_premises: usize,
    cold_spawn_seconds: f64,
    records_per_sec: f64,
    rss_baseline_mb: f64,
    rss_spawn_mb: f64,
    rss_final_mb: f64,
    rss_growth_mb: f64,
    rss_budget_mb: f64,
    sheds: u64,
    dropped_events: u64,
    evictions: u64,
    hydrations: u64,
    snapshot_errors: u64,
    snapshot_rounds: usize,
    p50_off_ms: f64,
    p99_off_ms: f64,
    p50_on_ms: f64,
    p99_on_ms: f64,
}

fn main() {
    let n = env_usize("GEM_SOAK_PREMISES", if quick() { 5_000 } else { 100_000 });
    let hot_cap = env_usize("GEM_SOAK_HOT_CAP", 64);
    let shards = 4usize;
    let max_batch = 8usize;
    // The hot tier bounds model memory; the rest of the growth budget
    // covers per-tenant bookkeeping (sessions, gates, stored images, a
    // few hundred bytes each) plus allocator slack.
    let rss_budget_mb = env_usize("GEM_SOAK_RSS_MB", (200.0 + n as f64 * 0.004) as usize) as f64;

    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/soak"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One tiny seed tenant shared by every premises: the soak measures
    // the tiering machinery, not model quality, so the model just has
    // to be real and cheap to (de)serialize.
    println!("soak: training seed model...");
    let mut scen = ScenarioConfig::user(1);
    scen.train_duration_s = 45.0;
    scen.n_test_in = 8;
    scen.n_test_out = 8;
    let ds = Scenario::build(scen).generate();
    let gcfg = GemConfig {
        embedding_dim: 8,
        rounds: 1,
        sample_sizes: vec![4],
        epochs: 2,
        walks: WalkConfig { walks_per_node: 2, walk_length: 4 },
        ..GemConfig::default()
    };
    let gem = Gem::fit(gcfg, &ds.train);
    let records: Vec<SignalRecord> = ds.test.iter().map(|t| t.record.clone()).collect();

    let seed_json = GemSnapshot::capture(&gem).to_json().unwrap();
    std::fs::write(dir.join("seed.json"), seed_json.as_bytes()).unwrap();
    let checksum = fnv1a64_hex(seed_json.as_bytes());
    println!("soak: seed snapshot {} bytes, checksum {checksum}", seed_json.len());
    let state = Monitor::new(gem, MonitorConfig::default()).state();
    let sidecar = serde::Serialize::serialize(&state);
    let entries: Vec<PremisesEntry> = (0..n as u64)
        .map(|i| PremisesEntry {
            premises_id: i + 1,
            snapshot_file: "seed.json".into(),
            snapshot_checksum: checksum.clone(),
            epochs: 0,
            sidecar: sidecar.clone(),
        })
        .collect();
    FleetManifest::new(entries).save(&dir).unwrap();

    let cfg = FleetConfig {
        shards,
        max_batch,
        queue_per_shard: 2048,
        dir: Some(dir.clone()),
        snapshot_interval: None,
        hot_premises_per_shard: Some(hot_cap),
        // Per-premises registry series would make the registry itself
        // scale with the fleet; at soak scale that is exactly the RSS
        // growth this bench exists to rule out.
        obs: ObsOptions { per_premises: false, ..ObsOptions::default() },
    };
    let rss_baseline = rss_mb();
    let t0 = Instant::now();
    let recovery = Fleet::recover(cfg).unwrap();
    let cold_spawn_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(recovery.replayed_epochs, 0, "a clean manifest must replay nothing");
    let fleet = recovery.fleet;
    let rss_spawn = rss_mb();
    println!(
        "soak: cold-spawned {n} premises in {cold_spawn_seconds:.2}s \
         (rss {rss_baseline:.1} -> {rss_spawn:.1} MB)"
    );

    // Phase A: one record to every premises, round-robin — every touch
    // hydrates a cold tenant and evicts another. No snapshots.
    let mut outstanding = 0usize;
    let mut lat_off: Vec<f64> = Vec::with_capacity(n);
    let stream_start = Instant::now();
    for i in 0..n as u64 {
        let record = records[i as usize % records.len()].clone();
        assert!(
            fleet.submit(i + 1, record).accepted(),
            "paced submission must never shed (premises {})",
            i + 1
        );
        outstanding += 1;
        pump(&fleet, &mut outstanding, &mut lat_off);
    }
    fleet.flush().unwrap();
    pump(&fleet, &mut outstanding, &mut lat_off);
    let phase_a = stream_start.elapsed().as_secs_f64();
    println!("soak: phase A (snapshots off) {n} records in {phase_a:.1}s, rss {:.1} MB", rss_mb());

    // Phase B: same workload with incremental snapshot rounds running
    // against the live stream. The rounds interleave with drains shard-
    // side; the gate is that tail latency does not double.
    let mut lat_on: Vec<f64> = Vec::with_capacity(n);
    let mut snapshot_rounds = 0usize;
    let snap_at: Vec<u64> = vec![n as u64 / 4, (3 * n as u64) / 4];
    let phase_b_start = Instant::now();
    for i in 0..n as u64 {
        if snap_at.contains(&i) {
            fleet.snapshot().unwrap();
            snapshot_rounds += 1;
        }
        let record = records[(i as usize + 1) % records.len()].clone();
        assert!(
            fleet.submit(i + 1, record).accepted(),
            "paced submission must never shed (premises {})",
            i + 1
        );
        outstanding += 1;
        pump(&fleet, &mut outstanding, &mut lat_on);
    }
    fleet.flush().unwrap();
    pump(&fleet, &mut outstanding, &mut lat_on);
    let phase_b = phase_b_start.elapsed().as_secs_f64();
    assert_eq!(outstanding, 0, "every record must resolve to a decision");
    let rss_final = rss_mb();
    println!(
        "soak: phase B ({snapshot_rounds} snapshot rounds) {n} records in {phase_b:.1}s, \
         rss {rss_final:.1} MB"
    );

    // --- gates ---
    let stats = fleet.fleet_stats();
    assert_eq!(stats.sheds, 0, "shed rate must be ~0 under paced load");
    assert_eq!(fleet.unknown_sheds(), 0);
    assert_eq!(stats.dropped_events, 0, "a drained consumer must lose nothing");
    assert_eq!(stats.snapshot_errors, 0);
    let (mut evictions, mut hydrations) = (0u64, 0u64);
    for s in &stats.shards {
        assert!(
            s.hot_premises as usize <= hot_cap,
            "hot tier must respect the cap after drains settle: {s:?}"
        );
        evictions += s.evictions;
        hydrations += s.hydrations;
    }
    assert!(
        hydrations as usize >= n,
        "round-robin over {n} premises with a cap of {hot_cap} must churn \
         (hydrations {hydrations})"
    );
    let rss_growth = rss_final - rss_baseline;
    assert!(
        rss_growth <= rss_budget_mb,
        "RSS must be bounded by the hot tier, not the fleet: \
         grew {rss_growth:.1} MB (budget {rss_budget_mb:.1} MB) over {n} premises"
    );

    lat_off.sort_by(|a, b| a.total_cmp(b));
    lat_on.sort_by(|a, b| a.total_cmp(b));
    let (p50_off, p99_off) = (percentile(&lat_off, 0.50), percentile(&lat_off, 0.99));
    let (p50_on, p99_on) = (percentile(&lat_on, 0.50), percentile(&lat_on, 0.99));
    println!(
        "soak: p50/p99 off {:.2}/{:.2} ms, on {:.2}/{:.2} ms",
        p50_off * 1e3,
        p99_off * 1e3,
        p50_on * 1e3,
        p99_on * 1e3
    );
    // 2 ms floor: when the snapshot-off p99 is itself sub-millisecond,
    // scheduler jitter dwarfs the 2x ratio.
    let p99_bound = (2.0 * p99_off).max(p99_off + 0.002);
    assert!(
        p99_on <= p99_bound,
        "incremental snapshots must not pause the world: \
         p99 {:.2} ms with snapshots vs {:.2} ms without (bound {:.2} ms)",
        p99_on * 1e3,
        p99_off * 1e3,
        p99_bound * 1e3
    );

    let records_per_sec = (2 * n) as f64 / (phase_a + phase_b);
    fleet.shutdown().unwrap();

    let line = SoakLine {
        bench: "soak",
        quick: quick(),
        premises: n,
        hot_cap,
        shards,
        max_batch,
        records_per_premises: 2,
        cold_spawn_seconds,
        records_per_sec,
        rss_baseline_mb: rss_baseline,
        rss_spawn_mb: rss_spawn,
        rss_final_mb: rss_final,
        rss_growth_mb: rss_growth,
        rss_budget_mb,
        sheds: stats.sheds,
        dropped_events: stats.dropped_events,
        evictions,
        hydrations,
        snapshot_errors: stats.snapshot_errors,
        snapshot_rounds,
        p50_off_ms: p50_off * 1e3,
        p99_off_ms: p99_off * 1e3,
        p50_on_ms: p50_on * 1e3,
        p99_on_ms: p99_on * 1e3,
    };
    let json = serde_json::to_string(&line).expect("serialize soak line");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out)
        .expect("open BENCH_soak.json");
    writeln!(f, "{json}").expect("append BENCH_soak.json");
    println!("appended results to {out}");

    let _ = std::fs::remove_dir_all(&dir);
    println!("soak: PASS ({n} premises, hot cap {hot_cap}, rss growth {rss_growth:.1} MB)");
}
