//! Reproduction harness: regenerates every table and figure of the GEM
//! paper's evaluation section.
//!
//! ```text
//! cargo run --release -p gem-bench --bin experiments -- <id> [...]
//! ids: table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10 fig11
//!      fig13 fig14 fig15 ablation all
//! ```
//!
//! Results land in `results/<id>.{md,csv}` (override with `GEM_OUT`).
//! Replication counts: `GEM_RUNS` (default 5; paper uses 30) and
//! `GEM_GRID` (default 3; paper uses 9 points per axis in Fig. 13).

use std::time::Instant;

use gem_baselines::{Autoencoder, AutoencoderConfig, DeepSvdd, DeepSvddConfig};
use gem_bench::harness::eval_stream;
use gem_bench::{
    eval_dataset, eval_gem, evaluation_users, lab_scenario, run_algorithm, Algorithm, Harness,
};
use gem_core::gem::GemEmbedder;
use gem_core::pipeline::Embedder;
use gem_core::{BaselineHbos, EnhancedDetector, Gem, GemConfig};
use gem_eval::{auc, roc_curve, tsne, Confusion, Summary, Table, TsneConfig};
use gem_graph::{NodeId, RecordId, WeightFn};
use gem_nn::Tensor;
use gem_rfsim::dynamics::prune_macs_from_test;
use gem_rfsim::propagation::BandKind;
use gem_rfsim::{prune_macs, MarkovOnOff, Scenario, TimeProfile};
use gem_signal::rng::child_rng;
use gem_signal::{Dataset, Label, RecordSet};

fn main() {
    let harness = Harness::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <table1|table2|table3|table4|fig6|fig7|fig8|fig9|fig10|fig11|fig13|fig14|fig15|ablation|attack|extensions|all> ...");
        std::process::exit(2);
    }
    for arg in &args {
        let t0 = Instant::now();
        match arg.as_str() {
            "table1" => table1(&harness),
            "table2" => table2(&harness),
            "table3" => table3(&harness),
            "table4" => table4(&harness),
            "fig6" => fig6(&harness),
            "fig7" => fig7(&harness),
            "fig8" => fig8(&harness),
            "fig9" => fig9(&harness),
            "fig10" => fig10_11(&harness, true),
            "fig11" => fig10_11(&harness, false),
            "fig13" => fig13(&harness),
            "fig14" => fig14(&harness),
            "fig15" => fig15(&harness),
            "ablation" => ablation(&harness),
            "attack" => attack(&harness),
            "extensions" => extensions(&harness),
            "all" => {
                for id in [
                    "table1",
                    "table2",
                    "table3",
                    "table4",
                    "fig6",
                    "fig7",
                    "fig8",
                    "fig9",
                    "fig10",
                    "fig11",
                    "fig13",
                    "fig14",
                    "fig15",
                    "ablation",
                    "attack",
                    "extensions",
                ] {
                    let t = Instant::now();
                    run_one(id, &harness);
                    eprintln!("[{id}] done in {:.1}s", t.elapsed().as_secs_f64());
                }
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{arg}] total {:.1}s", t0.elapsed().as_secs_f64());
    }
}

fn run_one(id: &str, harness: &Harness) {
    match id {
        "table1" => table1(harness),
        "table2" => table2(harness),
        "table3" => table3(harness),
        "table4" => table4(harness),
        "fig6" => fig6(harness),
        "fig7" => fig7(harness),
        "fig8" => fig8(harness),
        "fig9" => fig9(harness),
        "fig10" => fig10_11(harness, true),
        "fig11" => fig10_11(harness, false),
        "fig13" => fig13(harness),
        "fig14" => fig14(harness),
        "fig15" => fig15(harness),
        "ablation" => ablation(harness),
        "attack" => attack(harness),
        "extensions" => extensions(harness),
        _ => unreachable!(),
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Per-class metric vectors across users → paper-style summary cells.
struct MetricAccumulator {
    p_in: Vec<f64>,
    r_in: Vec<f64>,
    f_in: Vec<f64>,
    p_out: Vec<f64>,
    r_out: Vec<f64>,
    f_out: Vec<f64>,
}

impl MetricAccumulator {
    fn new() -> Self {
        MetricAccumulator {
            p_in: vec![],
            r_in: vec![],
            f_in: vec![],
            p_out: vec![],
            r_out: vec![],
            f_out: vec![],
        }
    }

    fn push(&mut self, c: &Confusion) {
        let i = c.in_metrics();
        let o = c.out_metrics();
        self.p_in.push(i.precision);
        self.r_in.push(i.recall);
        self.f_in.push(i.f_score);
        self.p_out.push(o.precision);
        self.r_out.push(o.recall);
        self.f_out.push(o.f_score);
    }

    fn row_cells(&self) -> Vec<String> {
        [&self.p_in, &self.r_in, &self.f_in, &self.p_out, &self.r_out, &self.f_out]
            .iter()
            .map(|v| Summary::of(v).paper_format())
            .collect()
    }

    fn mean_f(&self) -> (f64, f64) {
        (Summary::of(&self.f_in).mean, Summary::of(&self.f_out).mean)
    }
}

// ---------------------------------------------------------------- table 1

fn table1(h: &Harness) {
    let cfg = GemConfig::default();
    let datasets: Vec<Dataset> = evaluation_users().iter().map(eval_dataset).collect();
    let mut table = Table::new(
        "Table I — performance comparison, mean (min, max) over 10 users",
        &["Algorithm", "P_in", "R_in", "F_in", "P_out", "R_out", "F_out"],
    );
    for algo in Algorithm::all() {
        let mut acc = MetricAccumulator::new();
        for ds in &datasets {
            acc.push(&run_algorithm(algo, &cfg, ds));
        }
        let mut cells = vec![algo.name().to_string()];
        cells.extend(acc.row_cells());
        table.row(cells);
        eprintln!("  [table1] {} done", algo.name());
    }
    table.emit(&h.out_dir, "table1").expect("write table1");
}

// ---------------------------------------------------------------- table 2

fn table2(h: &Harness) {
    let cfg = GemConfig::default();
    let mut table = Table::new(
        "Table II — user-level performance of GEM",
        &["User", "P_in", "R_in", "F_in", "P_out", "R_out", "F_out", "#MACs", "Area (m2)"],
    );
    let mut acc = MetricAccumulator::new();
    for (uid, scenario_cfg) in evaluation_users().into_iter().enumerate() {
        let scenario = Scenario::build(scenario_cfg);
        let ds = scenario.generate();
        let mut macs = ds.train.mac_universe();
        for t in &ds.test {
            macs.extend(t.record.macs());
        }
        macs.sort_unstable();
        macs.dedup();
        let c = eval_gem(cfg.clone(), &ds);
        acc.push(&c);
        let i = c.in_metrics();
        let o = c.out_metrics();
        table.row(vec![
            (uid + 1).to_string(),
            fmt(i.precision),
            fmt(i.recall),
            fmt(i.f_score),
            fmt(o.precision),
            fmt(o.recall),
            fmt(o.f_score),
            macs.len().to_string(),
            format!("{:.0}", scenario.world.plan.area_m2()),
        ]);
    }
    let mut cells = vec!["Avg.".to_string()];
    cells.extend(acc.row_cells());
    cells.push(String::new());
    cells.push(String::new());
    table.row(cells);
    table.emit(&h.out_dir, "table2").expect("write table2");
}

// ---------------------------------------------------------------- table 3

fn table3(h: &Harness) {
    let cfg = GemConfig::default();
    let mut user_cfg = evaluation_users().remove(5); // ~100 m², many MACs
    user_cfg.n_test_in = 1000;
    user_cfg.n_test_out = 1000;
    let ds = eval_dataset(&user_cfg);
    let mut gem = Gem::fit(cfg, &ds.train);
    let (mut t_embed, mut t_detect, mut t_update) = (0.0f64, 0.0f64, 0.0f64);
    let mut n = 0usize;
    for t in &ds.test {
        let t0 = Instant::now();
        let Some(hv) = gem.add_and_embed(&t.record) else { continue };
        let t1 = Instant::now();
        let _ = gem.detect_only(&hv);
        let t2 = Instant::now();
        let _ = gem.update_with(&hv);
        let t3 = Instant::now();
        t_embed += (t1 - t0).as_secs_f64() * 1e3;
        t_detect += (t2 - t1).as_secs_f64() * 1e3;
        t_update += (t3 - t2).as_secs_f64() * 1e3;
        n += 1;
    }
    let n = n.max(1) as f64;
    let mut table = Table::new(
        format!("Table III — inference time breakdown (ms, mean over {} records)", n as usize),
        &["Embedding generation", "In-out detection", "Model update", "Total"],
    );
    table.row(vec![
        format!("{:.3}", t_embed / n),
        format!("{:.3}", t_detect / n),
        format!("{:.3}", t_update / n),
        format!("{:.3}", (t_embed + t_detect + t_update) / n),
    ]);
    table.emit(&h.out_dir, "table3").expect("write table3");
}

// ---------------------------------------------------------------- table 4

fn table4(h: &Harness) {
    let scenario = Scenario::build(lab_scenario());
    let mut table = Table::new(
        "Table IV — RSS variation during a day (lab)",
        &["Time", "Mean (dBm)", "SD (dBm)", "#MACs"],
    );
    for profile in [TimeProfile::MORNING, TimeProfile::AFTERNOON, TimeProfile::EVENING] {
        // 50 sensing walks around the lab under each profile.
        let positions = scenario.training_positions();
        let mut rng = scenario.rng(0x7AB4 ^ profile.name.len() as u64);
        let records = scenario.sense_positions(&positions, &profile, 0.0, &mut rng);
        let stats = records.rss_stats();
        table.row(vec![
            profile.name.to_string(),
            format!("{:.2}", stats.mean_dbm),
            format!("{:.2}", stats.sd_dbm),
            stats.n_macs.to_string(),
        ]);
    }
    table.emit(&h.out_dir, "table4").expect("write table4");
}

// ------------------------------------------------------------------ fig 6

fn fig6(h: &Harness) {
    let cfg = GemConfig::default();
    let ds = eval_dataset(&evaluation_users()[2]);
    let gem = Gem::fit(cfg, &ds.train);
    let graph = gem.graph();
    let record_nodes: Vec<NodeId> =
        (0..graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
    let mac_nodes: Vec<NodeId> =
        (0..graph.n_macs() as u32).map(|m| NodeId::Mac(gem_graph::MacId(m))).collect();
    let (rec_h, _) = gem.bisage().embed_nodes(graph, &record_nodes);
    let (mac_h, _) = gem.bisage().embed_nodes(graph, &mac_nodes);
    let mut data: Vec<Vec<f32>> = (0..rec_h.rows()).map(|i| rec_h.row(i).to_vec()).collect();
    data.extend((0..mac_h.rows()).map(|i| mac_h.row(i).to_vec()));
    let mut rng = child_rng(7, 0xF16);
    let points = tsne(&data, TsneConfig { iterations: 300, ..TsneConfig::default() }, &mut rng);
    let mut table =
        Table::new("Fig 6 — t-SNE of learned primary embeddings", &["node_type", "x", "y"]);
    for (i, p) in points.iter().enumerate() {
        let kind = if i < rec_h.rows() { "record" } else { "mac" };
        table.row(vec![kind.to_string(), format!("{:.4}", p[0]), format!("{:.4}", p[1])]);
    }
    table.emit(&h.out_dir, "fig6").expect("write fig6");
    // Separation diagnostic: mean centroid distance between types.
    let centroid = |range: std::ops::Range<usize>| -> [f64; 2] {
        let mut c = [0.0f64; 2];
        for i in range.clone() {
            c[0] += points[i][0];
            c[1] += points[i][1];
        }
        [c[0] / range.len() as f64, c[1] / range.len() as f64]
    };
    let cr = centroid(0..rec_h.rows());
    let cm = centroid(rec_h.rows()..points.len());
    eprintln!(
        "  [fig6] record/mac centroid distance: {:.3}",
        ((cr[0] - cm[0]).powi(2) + (cr[1] - cm[1]).powi(2)).sqrt()
    );
}

// ------------------------------------------------------------------ fig 7

/// "GEM without BiSAGE": our enhanced detector applied directly to the
/// padded matrix representation (missing entries at −120 dBm).
fn matrix_od_confusion(cfg: &GemConfig, ds: &Dataset) -> Confusion {
    let universe = ds.train.to_matrix(gem_signal::RSS_PAD_DBM);
    let n = universe.rows;
    let mut train = Tensor::zeros(n, universe.cols());
    for i in 0..n {
        let row: Vec<f32> = universe.row(i).iter().map(|&v| (v + 120.0) / 100.0).collect();
        train.set_row(i, &row);
    }
    let mut det = EnhancedDetector::fit_calibrated(
        &train,
        cfg.bins,
        cfg.temperature as f64,
        cfg.tau_u as f64,
        cfg.tau_l as f64,
        cfg.calibrate_keep_in,
        cfg.calibrate_confident,
    );
    eval_stream(&ds.test, |rec| {
        if rec.is_empty() {
            return Label::Out;
        }
        let (row, dropped) = universe.project(rec);
        if dropped == rec.len() {
            return Label::Out;
        }
        let sample: Vec<f32> = row.iter().map(|&v| (v + 120.0) / 100.0).collect();
        let d = det.detect_and_update(&sample);
        if d.is_outlier {
            Label::Out
        } else {
            Label::In
        }
    })
}

fn fig7(h: &Harness) {
    let cfg = GemConfig::default();
    let mut with = MetricAccumulator::new();
    let mut without = MetricAccumulator::new();
    for user in evaluation_users() {
        let ds = eval_dataset(&user);
        with.push(&eval_gem(cfg.clone(), &ds));
        without.push(&matrix_od_confusion(&cfg, &ds));
    }
    let mut table = Table::new(
        "Fig 7 — GEM with vs without BiSAGE embeddings (matrix + padding)",
        &["Variant", "P_in", "R_in", "F_in", "P_out", "R_out", "F_out"],
    );
    let mut row = vec!["GEM (with BiSAGE)".to_string()];
    row.extend(with.row_cells());
    table.row(row);
    let mut row = vec!["GEM w/o BiSAGE (matrix)".to_string()];
    row.extend(without.row_cells());
    table.row(row);
    table.emit(&h.out_dir, "fig7").expect("write fig7");
}

// ------------------------------------------------------------------ fig 8

fn fig8(h: &Harness) {
    let cfg = GemConfig::default();
    let ds = eval_dataset(&evaluation_users()[5]);
    let (mut embedder, train_embs) = GemEmbedder::fit(&cfg, &ds.train);
    // Cache test embeddings once; both detector variants stream the same
    // inputs.
    let test: Vec<(Option<Vec<f32>>, Label)> =
        ds.test.iter().map(|t| (embedder.embed(&t.record), t.label)).collect();

    let mut enhanced = EnhancedDetector::fit_calibrated(
        &train_embs,
        cfg.bins,
        cfg.temperature as f64,
        cfg.tau_u as f64,
        cfg.tau_l as f64,
        cfg.calibrate_keep_in,
        cfg.calibrate_confident,
    );
    let mut baseline = BaselineHbos::fit(&train_embs, cfg.bins, cfg.contamination as f64);

    let mut enh_scores: Vec<(f64, bool)> = Vec::new();
    let mut base_scores: Vec<(f64, bool)> = Vec::new();
    let mut enh_confusion = Confusion::default();
    let mut base_confusion = Confusion::default();
    for (emb, label) in &test {
        let positive = *label == Label::Out;
        match emb {
            None => {
                enh_scores.push((2.0, positive));
                base_scores.push((2.0, positive));
                enh_confusion.record(*label, Label::Out);
                base_confusion.record(*label, Label::Out);
            }
            Some(e) => {
                // Stream with each variant's own threshold and updates;
                // sweep the pre-softmax normalized score for the curve
                // (S_T saturates to 1.0 for every clear outlier and the
                // resulting ties would flatten the ROC).
                let enh_det = enhanced.detect_and_update(e);
                let base_det = baseline.detect_and_update(e);
                enh_confusion
                    .record(*label, if enh_det.is_outlier { Label::Out } else { Label::In });
                base_confusion
                    .record(*label, if base_det.is_outlier { Label::Out } else { Label::In });
                enh_scores.push((enhanced.normalized_raw(e), positive));
                base_scores.push((baseline.score(e), positive));
            }
        }
    }
    let enh_curve = roc_curve(&enh_scores);
    let base_curve = roc_curve(&base_scores);
    let mut table = Table::new(
        format!(
            "Fig 8 — enhanced vs original histogram detector: streamed F_out {:.3} vs {:.3}              (F_in {:.3} vs {:.3}); ranking AUC {:.3} vs {:.3}",
            enh_confusion.out_metrics().f_score,
            base_confusion.out_metrics().f_score,
            enh_confusion.in_metrics().f_score,
            base_confusion.in_metrics().f_score,
            auc(&enh_curve),
            auc(&base_curve)
        ),
        &["variant", "fpr", "tpr"],
    );
    for p in &enh_curve {
        table.row(vec!["enhanced".into(), format!("{:.4}", p.fpr), format!("{:.4}", p.tpr)]);
    }
    for p in &base_curve {
        table.row(vec!["original".into(), format!("{:.4}", p.fpr), format!("{:.4}", p.tpr)]);
    }
    table.emit(&h.out_dir, "fig8").expect("write fig8");
}

// ------------------------------------------------------------------ fig 9

fn fig9(h: &Harness) {
    let cfg = GemConfig::default();
    let ds = eval_dataset(&evaluation_users()[5]);

    // (a) F vs training ratio, averaged over three users to de-noise.
    let users: Vec<Dataset> =
        [0usize, 4, 5].iter().map(|&i| eval_dataset(&evaluation_users()[i])).collect();
    let mut table = Table::new(
        "Fig 9a — performance vs training ratio (3 users)",
        &["train_ratio", "F_in", "F_out"],
    );
    for k in 1..=10 {
        let mut acc = MetricAccumulator::new();
        for user_ds in &users {
            let chunks = user_ds.train.chunks(10);
            let mut train = RecordSet::new();
            for chunk in &chunks[..k] {
                for rec in chunk {
                    train.push(rec.clone());
                }
            }
            let sub = Dataset::new(train, user_ds.test.clone());
            acc.push(&eval_gem(cfg.clone(), &sub));
        }
        let (fi, fo) = acc.mean_f();
        table.row(vec![format!("{}%", k * 10), fmt(fi), fmt(fo)]);
        eprintln!("  [fig9a] {}% done", k * 10);
    }
    table.emit(&h.out_dir, "fig9a").expect("write fig9a");

    // (b) F vs update ratio: one model, staged streaming.
    let mut gem = Gem::fit(cfg, &ds.train);
    let mut table = Table::new(
        "Fig 9b — performance vs update ratio (staged online updates)",
        &["stage", "F_in", "F_out"],
    );
    for (si, stage) in ds.test_stages(10).into_iter().enumerate() {
        let c = eval_stream(stage, |rec| gem.infer(rec).label);
        table.row(vec![
            format!("{}%", (si + 1) * 10),
            fmt(c.in_metrics().f_score),
            fmt(c.out_metrics().f_score),
        ]);
    }
    table.emit(&h.out_dir, "fig9b").expect("write fig9b");
}

// ------------------------------------------------------------- fig 10/11

fn fig10_11(h: &Harness, prune_train: bool) {
    let cfg = GemConfig::default();
    let base = eval_dataset(&evaluation_users()[5]);
    let (name, stem) = if prune_train {
        ("Fig 10 — F-score vs % MACs pruned from the training set", "fig10")
    } else {
        ("Fig 11 — F-score vs % MACs pruned from the testing set", "fig11")
    };
    let mut table = Table::new(name, &["pruned_%", "F_in", "F_out"]);
    for pct in [0usize, 5, 10, 15, 20, 25] {
        let frac = pct as f64 / 100.0;
        let mut f_in = Vec::new();
        let mut f_out = Vec::new();
        for run in 0..h.runs {
            let mut ds = base.clone();
            let mut rng = child_rng(0xF1011 + run as u64, pct as u64);
            if prune_train {
                prune_macs(&mut ds.train, frac, &mut rng);
            } else {
                // Select victims from the whole universe, remove from the
                // test stream only.
                let mut universe = ds.train.clone();
                for t in &ds.test {
                    universe.push(t.record.clone());
                }
                let victims = prune_macs(&mut universe, frac, &mut rng);
                prune_macs_from_test(&mut ds.test, &victims);
            }
            let c = eval_gem(cfg.clone(), &ds);
            f_in.push(c.in_metrics().f_score);
            f_out.push(c.out_metrics().f_score);
        }
        table.row(vec![
            pct.to_string(),
            fmt(Summary::of(&f_in).mean),
            fmt(Summary::of(&f_out).mean),
        ]);
        eprintln!("  [{stem}] {pct}% done ({} runs)", h.runs);
    }
    table.emit(&h.out_dir, stem).expect("write fig10/11");
}

// ----------------------------------------------------------------- fig 13

fn fig13(h: &Harness) {
    let cfg = GemConfig::default();
    let base = eval_dataset(&evaluation_users()[3]);
    let mut table = Table::new(
        "Fig 13 — F-score under the AP ON-OFF two-state Markov model",
        &["p", "q", "F_in", "F_out"],
    );
    let axis: Vec<f64> = (0..h.grid).map(|i| 0.1 + 0.8 * i as f64 / (h.grid - 1) as f64).collect();
    for &p in &axis {
        for &q in &axis {
            let mut f_in = Vec::new();
            let mut f_out = Vec::new();
            for run in 0..h.runs {
                let mut ds = base.clone();
                let chain = MarkovOnOff::new(p, q);
                let mut rng = child_rng(0xF13 + run as u64, (p * 100.0 + q) as u64);
                chain.apply(&mut ds, &mut rng);
                let c = eval_gem(cfg.clone(), &ds);
                f_in.push(c.in_metrics().f_score);
                f_out.push(c.out_metrics().f_score);
            }
            table.row(vec![
                format!("{p:.1}"),
                format!("{q:.1}"),
                fmt(Summary::of(&f_in).mean),
                fmt(Summary::of(&f_out).mean),
            ]);
            eprintln!("  [fig13] p={p:.1} q={q:.1} done");
        }
    }
    table.emit(&h.out_dir, "fig13").expect("write fig13");
}

// ----------------------------------------------------------------- fig 14

fn fig14(h: &Harness) {
    let users: Vec<Dataset> =
        [0usize, 4, 7].iter().map(|&i| eval_dataset(&evaluation_users()[i])).collect();

    // (a) embedding dimension.
    let mut table =
        Table::new("Fig 14a — F-score vs embedding dimension d", &["d", "F_in", "F_out"]);
    for d in [8usize, 16, 32, 48, 64] {
        let cfg = GemConfig { embedding_dim: d, ..GemConfig::default() };
        let mut acc = MetricAccumulator::new();
        for ds in &users {
            acc.push(&eval_gem(cfg.clone(), ds));
        }
        let (fi, fo) = acc.mean_f();
        table.row(vec![d.to_string(), fmt(fi), fmt(fo)]);
        eprintln!("  [fig14a] d={d} done");
    }
    table.emit(&h.out_dir, "fig14a").expect("write fig14a");

    // (b)/(c): reuse cached embeddings per user, refit the detector only.
    type CachedUser = (Tensor, Vec<(Option<Vec<f32>>, Label)>);
    let base_cfg = GemConfig::default();
    let cached: Vec<CachedUser> = users
        .iter()
        .map(|ds| {
            let (mut embedder, train_embs) = GemEmbedder::fit(&base_cfg, &ds.train);
            let test: Vec<(Option<Vec<f32>>, Label)> =
                ds.test.iter().map(|t| (embedder.embed(&t.record), t.label)).collect();
            (train_embs, test)
        })
        .collect();

    let eval_detector = |bins: usize, temperature: f64| -> (f64, f64) {
        let mut acc = MetricAccumulator::new();
        for (train_embs, test) in &cached {
            let mut det = EnhancedDetector::fit_calibrated(
                train_embs,
                bins,
                temperature,
                base_cfg.tau_u as f64,
                base_cfg.tau_l as f64,
                base_cfg.calibrate_keep_in,
                base_cfg.calibrate_confident,
            );
            let mut c = Confusion::default();
            for (emb, label) in test {
                let predicted = match emb {
                    None => Label::Out,
                    Some(e) => {
                        if det.detect_and_update(e).is_outlier {
                            Label::Out
                        } else {
                            Label::In
                        }
                    }
                };
                c.record(*label, predicted);
            }
            acc.push(&c);
        }
        acc.mean_f()
    };

    let mut table = Table::new("Fig 14b — F-score vs scaling factor T", &["T", "F_in", "F_out"]);
    for t in [0.01f64, 0.03, 0.06, 0.10, 0.20] {
        let (fi, fo) = eval_detector(base_cfg.bins, t);
        table.row(vec![format!("{t:.2}"), fmt(fi), fmt(fo)]);
    }
    table.emit(&h.out_dir, "fig14b").expect("write fig14b");

    let mut table = Table::new("Fig 14c — F-score vs histogram bins m", &["m", "F_in", "F_out"]);
    for m in [4usize, 6, 10, 16, 24] {
        let (fi, fo) = eval_detector(m, base_cfg.temperature as f64);
        table.row(vec![m.to_string(), fmt(fi), fmt(fo)]);
    }
    table.emit(&h.out_dir, "fig14c").expect("write fig14c");

    // (d) edge-weight function.
    let mut table =
        Table::new("Fig 14d — F-score vs edge-weight function", &["weight_fn", "F_in", "F_out"]);
    for (name, wf) in [
        ("RSS + 120 (paper)", WeightFn::OffsetLinear { c: 120.0 }),
        ("10^(RSS/30)", WeightFn::Exponential { scale: 30.0 }),
        ("10^(RSS/15)", WeightFn::Exponential { scale: 15.0 }),
        ("unit (presence only)", WeightFn::Unit),
    ] {
        let cfg = GemConfig { weight_fn: wf, ..GemConfig::default() };
        let mut acc = MetricAccumulator::new();
        for ds in &users {
            acc.push(&eval_gem(cfg.clone(), ds));
        }
        let (fi, fo) = acc.mean_f();
        table.row(vec![name.to_string(), fmt(fi), fmt(fo)]);
        eprintln!("  [fig14d] {name} done");
    }
    table.emit(&h.out_dir, "fig14d").expect("write fig14d");
}

// ----------------------------------------------------------------- fig 15

fn fig15(h: &Harness) {
    let cfg = GemConfig::default();

    // (b) time-of-day: train at 11AM, test at each instant.
    let scenario = Scenario::build(lab_scenario());
    let mut table = Table::new(
        "Fig 15b — lab performance vs time of day (trained at 11AM)",
        &["time", "F_in", "F_out"],
    );
    for profile in [TimeProfile::MORNING, TimeProfile::AFTERNOON, TimeProfile::EVENING] {
        let ds = scenario.generate_with(TimeProfile::MORNING, profile);
        let c = eval_gem(cfg.clone(), &ds);
        table.row(vec![
            profile.name.to_string(),
            fmt(c.in_metrics().f_score),
            fmt(c.out_metrics().f_score),
        ]);
    }
    table.emit(&h.out_dir, "fig15b").expect("write fig15b");

    // (c) walking speed during initial training.
    let mut table = Table::new(
        "Fig 15c — performance vs training walking speed",
        &["speed_mps", "n_train", "F_in", "F_out"],
    );
    for speed in [0.4f64, 0.8, 1.2] {
        let mut sc = lab_scenario();
        sc.speed_mps = speed;
        let ds = eval_dataset(&sc);
        let c = eval_gem(cfg.clone(), &ds);
        table.row(vec![
            format!("{speed:.1}"),
            ds.train.len().to_string(),
            fmt(c.in_metrics().f_score),
            fmt(c.out_metrics().f_score),
        ]);
    }
    table.emit(&h.out_dir, "fig15c").expect("write fig15c");

    // (d) frequency-band availability.
    let mut table = Table::new(
        "Fig 15d — performance vs available frequency bands",
        &["bands", "F_in", "F_out"],
    );
    for (name, bands) in [
        ("2.4GHz only", vec![BandKind::Ghz24]),
        ("5GHz only", vec![BandKind::Ghz5]),
        ("2.4GHz + 5GHz", vec![BandKind::Ghz24, BandKind::Ghz5]),
    ] {
        let mut sc = lab_scenario();
        sc.enabled_bands = bands;
        let ds = eval_dataset(&sc);
        let c = eval_gem(cfg.clone(), &ds);
        table.row(vec![
            name.to_string(),
            fmt(c.in_metrics().f_score),
            fmt(c.out_metrics().f_score),
        ]);
    }
    table.emit(&h.out_dir, "fig15d").expect("write fig15d");
}

// --------------------------------------------------------------- ablation

fn ablation(h: &Harness) {
    let users: Vec<Dataset> =
        [1usize, 4, 8].iter().map(|&i| eval_dataset(&evaluation_users()[i])).collect();
    let base = GemConfig::default();
    let variants: Vec<(&str, GemConfig)> = vec![
        ("GEM (default)", base.clone()),
        ("uniform neighbor sampling", GemConfig { uniform_sampling: true, ..base.clone() }),
        (
            "unweighted mean aggregator",
            GemConfig { aggregator: gem_core::Aggregator::Mean, ..base.clone() },
        ),
        ("frozen base embeddings", GemConfig { trainable_base: false, ..base.clone() }),
        ("typed negatives", GemConfig { typed_negatives: true, ..base.clone() }),
        ("fixed paper thresholds", GemConfig { calibrate_thresholds: false, ..base.clone() }),
        ("presence-only edge weights", GemConfig { weight_fn: WeightFn::Unit, ..base.clone() }),
    ];
    let mut table =
        Table::new("Ablation — BiSAGE design choices (3 users)", &["Variant", "F_in", "F_out"]);
    for (name, cfg) in variants {
        let mut acc = MetricAccumulator::new();
        for ds in &users {
            acc.push(&eval_gem(cfg.clone(), ds));
        }
        let (fi, fo) = acc.mean_f();
        table.row(vec![name.to_string(), fmt(fi), fmt(fo)]);
        eprintln!("  [ablation] {name} done");
    }
    table.emit(&h.out_dir, "ablation").expect("write ablation");
}

// ------------------------------------------------- autoencoder smoke use
// (keeps the import used when only some experiments are compiled in)
#[allow(dead_code)]
fn _autoencoder_probe(ds: &Dataset) {
    let _ = Autoencoder::fit(AutoencoderConfig::default(), &ds.train);
}

// -------------------------------------------------------- boundary attack

/// Section VII: a "bad actor" lingers just outside the boundary and moves
/// outward slowly, trying to abuse the online model update. We measure
/// how many attacker scans are (a) accepted as in-premises and (b)
/// absorbed as confident updates, and whether the clean operating point
/// degrades afterwards.
fn attack(h: &Harness) {
    let cfg = GemConfig::default();
    let mut sc_cfg = evaluation_users().remove(5);
    sc_cfg.churn_fraction = 0.0; // isolate the attack from churn
    let scenario = Scenario::build(sc_cfg.clone());
    let ds = scenario.generate();
    let mut gem = Gem::fit(cfg, &ds.train);

    // Clean performance before the attack, on a deep copy of the model
    // (snapshots double as a clone mechanism).
    let before = {
        let mut clean = gem_core::GemSnapshot::capture(&gem).restore().expect("snapshot roundtrip");
        eval_stream(&ds.test, |rec| clean.infer(rec).label)
    };

    // The attacker: starts 0.3 m outside the east wall and drifts outward
    // to 12 m over 240 scans, sampling the radio like the real device.
    let bb = scenario.world.plan.bounding_rect().expect("premises");
    let mut attacker_positions = Vec::new();
    let n_attack = 240usize;
    for i in 0..n_attack {
        let t = i as f64 / (n_attack - 1) as f64;
        let x = bb.max.x + 0.3 + 11.7 * t;
        let y = (bb.min.y + bb.max.y) / 2.0 + (i % 7) as f64 * 0.15;
        attacker_positions.push(gem_rfsim::Position::new(x, y, 0));
    }
    let mut rng = scenario.rng(0xA77A);
    let attack_scans =
        scenario.sense_positions(&attacker_positions, &TimeProfile::QUIET, 1e6, &mut rng);

    let mut accepted = 0usize;
    let updates_before = gem.detector().n_updates;
    for rec in attack_scans.iter() {
        let d = gem.infer(rec);
        if d.label == Label::In {
            accepted += 1;
        }
    }
    let absorbed = gem.detector().n_updates - updates_before;

    // Clean performance after the attack (fresh copy of the test stream).
    let after = eval_stream(&ds.test, |rec| gem.infer(rec).label);

    let mut table = Table::new("Section VII — boundary-attack resistance", &["metric", "value"]);
    table.row(vec!["attacker scans".into(), attack_scans.len().to_string()]);
    table.row(vec![
        "accepted as in-premises".into(),
        format!("{accepted} ({:.1}%)", 100.0 * accepted as f64 / attack_scans.len() as f64),
    ]);
    table.row(vec![
        "absorbed into the model".into(),
        format!("{absorbed} ({:.1}%)", 100.0 * absorbed as f64 / attack_scans.len() as f64),
    ]);
    table.row(vec!["F_in before attack".into(), fmt(before.in_metrics().f_score)]);
    table.row(vec!["F_in after attack".into(), fmt(after.in_metrics().f_score)]);
    table.row(vec!["F_out before attack".into(), fmt(before.out_metrics().f_score)]);
    table.row(vec!["F_out after attack".into(), fmt(after.out_metrics().f_score)]);
    table.emit(&h.out_dir, "attack").expect("write attack");
}

// ------------------------------------------------------------- extensions

/// Extensions beyond the paper: Deep SVDD (the related-work family the
/// paper dismisses at this data scale) and the PCA-rotated detector.
fn extensions(h: &Harness) {
    let users: Vec<Dataset> =
        [0usize, 4, 7].iter().map(|&i| eval_dataset(&evaluation_users()[i])).collect();
    let mut table = Table::new(
        "Extensions — Deep SVDD baseline and PCA-rotated detector (3 users)",
        &["System", "F_in", "F_out"],
    );
    // GEM reference.
    let mut acc = MetricAccumulator::new();
    for ds in &users {
        acc.push(&eval_gem(GemConfig::default(), ds));
    }
    let (fi, fo) = acc.mean_f();
    table.row(vec!["GEM (default)".into(), fmt(fi), fmt(fo)]);
    // GEM + PCA rotation.
    let mut acc = MetricAccumulator::new();
    for ds in &users {
        acc.push(&eval_gem(GemConfig { pca_rotation: true, ..GemConfig::default() }, ds));
    }
    let (fi, fo) = acc.mean_f();
    table.row(vec!["GEM + PCA rotation".into(), fmt(fi), fmt(fo)]);
    // Deep SVDD on the padded matrix.
    let mut acc = MetricAccumulator::new();
    for ds in &users {
        let model = DeepSvdd::fit(DeepSvddConfig::default(), &ds.train);
        acc.push(&eval_stream(&ds.test, |rec| model.infer(rec).0));
    }
    let (fi, fo) = acc.mean_f();
    table.row(vec!["Deep SVDD (matrix)".into(), fmt(fi), fmt(fo)]);
    table.emit(&h.out_dir, "extensions").expect("write extensions");
}
