//! The Table-I algorithm registry: every system under comparison behind
//! one uniform `run_algorithm` entry point.

use gem_baselines::{
    Autoencoder, AutoencoderConfig, FeatureBagging, GraphSage, GraphSageConfig, Inoa, InoaConfig,
    IsolationForest, Lof, Mds, SignatureHome, SignatureHomeConfig,
};
use gem_core::pipeline::{Embedder, OutlierModel, Pipeline};
use gem_core::{EnhancedDetector, Gem, GemConfig};
use gem_eval::Confusion;
use gem_nn::Tensor;
use gem_signal::{Dataset, RecordSet};

use crate::harness::eval_stream;

/// Every algorithm of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// GEM = BiSAGE + our enhanced histogram detector.
    Gem,
    /// SignatureHome (network signature matching).
    SignatureHome,
    /// INOA (per-MAC-pair SVDD).
    Inoa,
    /// GraphSAGE embeddings + our detector.
    GraphSageOd,
    /// Autoencoder embeddings + our detector.
    AutoencoderOd,
    /// Classical MDS embeddings + our detector.
    MdsOd,
    /// BiSAGE embeddings + feature bagging.
    BisageFeatureBagging,
    /// BiSAGE embeddings + isolation forest.
    BisageIforest,
    /// BiSAGE embeddings + local outlier factor.
    BisageLof,
}

impl Algorithm {
    /// All Table-I rows in presentation order.
    pub fn all() -> [Algorithm; 9] {
        [
            Algorithm::Gem,
            Algorithm::SignatureHome,
            Algorithm::Inoa,
            Algorithm::GraphSageOd,
            Algorithm::AutoencoderOd,
            Algorithm::MdsOd,
            Algorithm::BisageFeatureBagging,
            Algorithm::BisageIforest,
            Algorithm::BisageLof,
        ]
    }

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Gem => "GEM (BiSAGE + OD)",
            Algorithm::SignatureHome => "SignatureHome",
            Algorithm::Inoa => "INOA",
            Algorithm::GraphSageOd => "GraphSAGE + OD",
            Algorithm::AutoencoderOd => "Autoencoder + OD",
            Algorithm::MdsOd => "MDS + OD",
            Algorithm::BisageFeatureBagging => "BiSAGE + Feature bagging",
            Algorithm::BisageIforest => "BiSAGE + iForest",
            Algorithm::BisageLof => "BiSAGE + LOF",
        }
    }
}

/// Fits our enhanced detector on embeddings with GEM's calibration rules.
fn fit_od(cfg: &GemConfig, train_embeddings: &Tensor) -> EnhancedDetector {
    EnhancedDetector::fit_calibrated(
        train_embeddings,
        cfg.bins,
        cfg.temperature as f64,
        cfg.tau_u as f64,
        cfg.tau_l as f64,
        cfg.calibrate_keep_in,
        cfg.calibrate_confident,
    )
}

fn run_pipeline<E: Embedder, D: OutlierModel>(embedder: E, detector: D, ds: &Dataset) -> Confusion {
    let mut pipeline = Pipeline::new(embedder, detector);
    eval_stream(&ds.test, |rec| pipeline.infer(rec).label)
}

/// Caps a record set at `n` records (deterministic prefix) — used to keep
/// the O(n³) MDS eigen-decomposition tractable.
fn cap(train: &RecordSet, n: usize) -> RecordSet {
    if train.len() <= n {
        train.clone()
    } else {
        RecordSet::from_records(train.records()[..n].to_vec())
    }
}

/// Runs one Table-I algorithm on a dataset and returns its confusion
/// matrix over the test stream. `cfg` supplies GEM's hyperparameters;
/// baselines derive matching settings from it (same dim/seed) so the
/// comparison isolates the algorithms.
pub fn run_algorithm(algo: Algorithm, cfg: &GemConfig, ds: &Dataset) -> Confusion {
    match algo {
        Algorithm::Gem => {
            let mut gem = Gem::fit(cfg.clone(), &ds.train);
            eval_stream(&ds.test, |rec| gem.infer(rec).label)
        }
        Algorithm::SignatureHome => {
            let sh = SignatureHome::fit(SignatureHomeConfig::default(), &ds.train);
            eval_stream(&ds.test, |rec| sh.infer(rec).0)
        }
        Algorithm::Inoa => {
            let inoa = Inoa::fit(InoaConfig::default(), &ds.train);
            eval_stream(&ds.test, |rec| inoa.infer(rec).0)
        }
        Algorithm::GraphSageOd => {
            let gs_cfg = GraphSageConfig {
                dim: cfg.embedding_dim,
                rounds: cfg.rounds,
                sample_sizes: cfg.sample_sizes.clone(),
                learning_rate: cfg.learning_rate,
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                walks: cfg.walks,
                negative_samples: cfg.negative_samples,
                weight_fn: cfg.weight_fn,
                inference_cap: cfg.inference_cap,
                seed: cfg.seed,
                ..GraphSageConfig::default()
            };
            let (embedder, train_embs) = GraphSage::fit(gs_cfg, &ds.train);
            run_pipeline(embedder, fit_od(cfg, &train_embs), ds)
        }
        Algorithm::AutoencoderOd => {
            let ae_cfg = AutoencoderConfig {
                dim: cfg.embedding_dim,
                seed: cfg.seed,
                ..AutoencoderConfig::default()
            };
            let (embedder, train_embs) = Autoencoder::fit(ae_cfg, &ds.train);
            run_pipeline(embedder, fit_od(cfg, &train_embs), ds)
        }
        Algorithm::MdsOd => {
            let capped = cap(&ds.train, 160);
            let (embedder, train_embs) = Mds::fit(cfg.embedding_dim, &capped);
            run_pipeline(embedder, fit_od(cfg, &train_embs), ds)
        }
        Algorithm::BisageFeatureBagging | Algorithm::BisageIforest | Algorithm::BisageLof => {
            let (embedder, train_embs) = gem_core::gem::GemEmbedder::fit(cfg, &ds.train);
            let contamination = cfg.contamination as f64;
            match algo {
                Algorithm::BisageFeatureBagging => {
                    let det = FeatureBagging::fit(&train_embs, 10, 15, contamination, cfg.seed);
                    run_pipeline(embedder, det, ds)
                }
                Algorithm::BisageIforest => {
                    let det = IsolationForest::fit(&train_embs, 100, 128, contamination, cfg.seed);
                    run_pipeline(embedder, det, ds)
                }
                Algorithm::BisageLof => {
                    let det = Lof::fit(&train_embs, 15, contamination);
                    run_pipeline(embedder, det, ds)
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn small_dataset() -> Dataset {
        let mut cfg = ScenarioConfig::user(4);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 40;
        cfg.n_test_out = 40;
        Scenario::build(cfg).generate()
    }

    #[test]
    fn registry_has_all_nine_rows() {
        let names: Vec<&str> = Algorithm::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
        assert!(names.contains(&"GEM (BiSAGE + OD)"));
        assert!(names.contains(&"BiSAGE + LOF"));
    }

    #[test]
    fn cheap_algorithms_beat_chance_on_easy_data() {
        let ds = small_dataset();
        for algo in [Algorithm::SignatureHome, Algorithm::Inoa] {
            let c = run_algorithm(algo, &GemConfig::default(), &ds);
            assert_eq!(c.total(), 80);
            assert!(c.accuracy() > 0.55, "{} accuracy {}", algo.name(), c.accuracy());
        }
    }
}
