//! Fleet scaling benchmark: aggregate decision throughput of the
//! sharded multi-tenant runtime versus a standalone single-premises
//! [`Monitor`], across shard counts, with queueing-latency percentiles
//! and the admission shed rate. Submission is concurrent — one
//! [`gem_service::FleetSubmitter`] thread per premises — so the
//! lock-free ingress path and the autonomous per-shard drain loops are
//! what is actually measured, not a single ingest thread serializing
//! everything in front of them.
//!
//! Run with `cargo bench -p gem-bench --bench fleet`. Each run appends
//! one JSON line to `BENCH_fleet.json` at the repository root.
//!
//! The scaling gate is hardware-aware: shards are threads, so at `S`
//! shards on `C` cores the fleet must deliver
//! `speedup(S) >= 0.7 * min(S, C)` (70% parallel efficiency of the
//! core-limited ideal) whenever the machine has at least 2 cores. On a
//! single core the gate degrades to half of parity — there is nothing
//! to scale with, but coalescing into fused `infer_batch` epochs must
//! still keep the fleet in the same league as the record-at-a-time
//! baseline. Per-shard busy/idle fractions (from the worker loops' own
//! accounting) land in the JSON so a failed gate shows *where* the
//! time went.
//!
//! `GEM_FLEET_SHARDS=1,2` restricts the swept shard counts (CI smoke);
//! the gates then apply to the largest count actually run.
//!
//! Three observability gates ride along: the decision-latency
//! histograms exported on the fleet registry must agree with the
//! bench's own externally sorted percentiles (within one log2 bucket —
//! the histogram's stated resolution), running with metrics fully on
//! must cost < 3% throughput versus metrics off, and request tracing
//! at a production-like 1% head-sampling rate must cost < 3% versus
//! tracing fully off (same interleaved best-of-N protocol, with the
//! within-mode spread reported as the noise floor).
//!
//! `GEM_BENCH_QUICK=1` shrinks the workload for CI smoke runs.

use std::io::Write;
use std::time::{Duration, Instant};

use gem_core::{Gem, GemConfig, GemSnapshot};
use gem_obs::{interpolate_quantile_seeded, Histogram, MetricValue, Registry, HISTOGRAM_BUCKETS};
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Fleet, FleetConfig, FleetEvent, Monitor, MonitorConfig, ObsOptions};
use gem_signal::SignalRecord;

const N_PREMISES: usize = 4;
const MAX_BATCH: usize = 32;
const QUEUE_PER_SHARD: usize = 256;

fn quick() -> bool {
    std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1")
}

struct Tenant {
    snapshot_json: String,
    stream: Vec<SignalRecord>,
}

/// Trains one model per premises and snapshots it, so every shard-count
/// run restores identical model state.
fn tenants() -> Vec<Tenant> {
    (1..=N_PREMISES as u32)
        .map(|user| {
            let mut cfg = ScenarioConfig::user(user);
            cfg.train_duration_s = 120.0;
            cfg.n_test_in = 40;
            cfg.n_test_out = 10;
            let ds = Scenario::build(cfg).generate();
            let gem = Gem::fit(GemConfig::default(), &ds.train);
            Tenant {
                snapshot_json: GemSnapshot::capture(&gem).to_json().unwrap(),
                stream: ds.test.iter().map(|t| t.record.clone()).collect(),
            }
        })
        .collect()
}

fn restore_monitor(tenant: &Tenant) -> Monitor {
    let gem = GemSnapshot::from_json(&tenant.snapshot_json).unwrap().restore().unwrap();
    Monitor::new(gem, MonitorConfig::default())
}

/// One fleet run: submit `records_per_premises` scans round-robin across
/// premises (retrying sheds with a tiny backoff so every record lands),
/// then flush and measure.
struct RunResult {
    records_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    shed_rate: f64,
    /// Registry-side interpolated quantile estimates from the merged
    /// per-shard decision-latency histograms. 0 with metrics off.
    hist_p50_ms: f64,
    hist_p99_ms: f64,
    /// Per-shard `busy / (busy + idle)` from the worker loops' own
    /// nanosecond accounting. All zero with metrics off.
    busy_fractions: Vec<f64>,
    idle_fractions: Vec<f64>,
}

/// Merges the per-shard `gem_shard_decision_latency_seconds` histograms
/// and estimates the `q`-quantile in nanoseconds with the registry's
/// log-linear interpolated estimator, seeded with the min/max observed
/// across shards so the estimate never leaves the measured range. The
/// estimate stays inside the rank's bucket, so the one-bucket agreement
/// gate below is unaffected — but p50 and p99 no longer collapse onto
/// the same bucket upper bound.
fn merged_latency_quantile(registry: &Registry, q: f64) -> Option<f64> {
    let mut merged = [0u64; HISTOGRAM_BUCKETS];
    let (mut min, mut max): (Option<u64>, Option<u64>) = (None, None);
    for (name, _, value) in registry.snapshot() {
        if name == "gem_shard_decision_latency_seconds" {
            if let MetricValue::Histogram(h) = value {
                for (m, b) in merged.iter_mut().zip(h.buckets.iter()) {
                    *m += *b;
                }
                min = match (min, h.min) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                max = match (max, h.max) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
        }
    }
    interpolate_quantile_seeded(&merged, q, min, max)
}

/// The observability configurations the bench sweeps: `metrics_off`
/// turns everything off, `metrics_on` is the default production config
/// (histograms + rings, tail-only trace capture), and the trace modes
/// pin the head-sampling rate for the tracing-overhead gate.
fn obs_mode(enabled: bool, trace_sample: f64, trace_tail_ms: f64) -> ObsOptions {
    ObsOptions { enabled, trace_sample, trace_tail_ms, ..ObsOptions::default() }
}

fn run_fleet(
    tenants: &[Tenant],
    shards: usize,
    records_per_premises: usize,
    obs: ObsOptions,
) -> RunResult {
    // Histogram agreement checks only make sense with metrics on.
    let metrics_on = obs.enabled;
    let monitors: Vec<(u64, Monitor)> =
        tenants.iter().enumerate().map(|(i, t)| (i as u64 + 1, restore_monitor(t))).collect();
    let fleet = Fleet::spawn(
        monitors,
        FleetConfig {
            shards,
            queue_per_shard: QUEUE_PER_SHARD,
            max_batch: MAX_BATCH,
            dir: None,
            snapshot_interval: None,
            hot_premises_per_shard: None,
            obs,
        },
    )
    .unwrap();
    let total = records_per_premises * tenants.len();
    // One submitter thread per premises: concurrent ingress is the
    // contract the lock-free admission path is built for, and with a
    // single submitting thread the fleet could never beat one core.
    // Sheds retry with a tiny backoff so every record lands.
    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<(u64, u64)>> = tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let submitter = fleet.submitter();
            let stream = tenant.stream.clone();
            std::thread::spawn(move || {
                let (mut attempts, mut sheds) = (0u64, 0u64);
                for k in 0..records_per_premises {
                    let record = stream[k % stream.len()].clone();
                    loop {
                        attempts += 1;
                        if submitter.submit(i as u64 + 1, record.clone()).accepted() {
                            break;
                        }
                        sheds += 1;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                (attempts, sheds)
            })
        })
        .collect();
    // Drain decisions while the submitters run: the event channel is
    // bounded and shards drop (and count) overflow rather than block,
    // so a consumer that never drains would lose latency samples.
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(total);
    let drain = |latencies_ms: &mut Vec<f64>| {
        while let Ok(FleetEvent { event, latency_s, .. }) = fleet.events().try_recv() {
            if matches!(event, Event::Decision { .. }) {
                latencies_ms.push(latency_s * 1e3);
            }
        }
    };
    while handles.iter().any(|h| !h.is_finished()) {
        drain(&mut latencies_ms);
        std::thread::sleep(Duration::from_micros(100));
    }
    let (mut attempts, mut sheds) = (0u64, 0u64);
    for h in handles {
        let (a, s) = h.join().expect("submitter thread");
        attempts += a;
        sheds += s;
    }
    fleet.flush().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    drain(&mut latencies_ms);
    assert_eq!(fleet.dropped_events(), 0, "benchmark consumer must keep up with the fleet");
    assert_eq!(latencies_ms.len(), total, "every admitted record must be decided");
    let stats = fleet.fleet_stats();
    let fraction = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
    let busy_fractions: Vec<f64> =
        stats.shards.iter().map(|s| fraction(s.busy_ns, s.busy_ns + s.idle_ns)).collect();
    let idle_fractions: Vec<f64> =
        stats.shards.iter().map(|s| fraction(s.idle_ns, s.busy_ns + s.idle_ns)).collect();
    let registry = fleet.registry();
    fleet.shutdown().unwrap();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p) as usize];
    let (mut hist_p50_ms, mut hist_p99_ms) = (0.0, 0.0);
    if metrics_on {
        // The histograms saw the same per-decision latencies the events
        // carried (recorded in ns by the shard), so the registry-side
        // quantile must land in the same log2 bucket as the externally
        // sorted percentile — one bucket of slack for boundary values.
        for (q, external_ms, out) in
            [(0.50, pct(0.50), &mut hist_p50_ms), (0.99, pct(0.99), &mut hist_p99_ms)]
        {
            let estimate_ns =
                merged_latency_quantile(&registry, q).expect("histograms must have samples");
            *out = estimate_ns / 1e6;
            let external_bucket = Histogram::bucket_index((external_ms * 1e6) as u64);
            let estimate_bucket = Histogram::bucket_index(estimate_ns.round() as u64);
            assert!(
                external_bucket.abs_diff(estimate_bucket) <= 1,
                "histogram p{} ({estimate_ns:.0} ns, bucket {estimate_bucket}) must agree with \
                 the external measurement ({external_ms} ms, bucket {external_bucket}) \
                 within one bucket",
                (q * 100.0) as u32,
            );
        }
    }
    RunResult {
        records_per_sec: total as f64 / elapsed,
        p50_latency_ms: pct(0.50),
        p99_latency_ms: pct(0.99),
        shed_rate: sheds as f64 / attempts as f64,
        hist_p50_ms,
        hist_p99_ms,
        busy_fractions,
        idle_fractions,
    }
}

/// Record-at-a-time single-Monitor baseline on one premises' stream.
fn run_baseline(tenant: &Tenant, records: usize) -> f64 {
    let mut monitor = restore_monitor(tenant);
    let start = Instant::now();
    for k in 0..records {
        monitor.process(&tenant.stream[k % tenant.stream.len()]);
    }
    records as f64 / start.elapsed().as_secs_f64()
}

#[derive(serde::Serialize)]
struct ShardLine {
    shards: usize,
    records_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    hist_p50_latency_ms: f64,
    hist_p99_latency_ms: f64,
    shed_rate: f64,
    speedup_vs_baseline: f64,
    /// Per-shard busy fraction `busy / (busy + idle)` from the worker
    /// loops' own accounting — where a failed scaling gate lost its
    /// time.
    busy_fractions: Vec<f64>,
    idle_fractions: Vec<f64>,
}

#[derive(serde::Serialize)]
struct FleetBenchLine {
    bench: &'static str,
    cores: usize,
    premises: usize,
    records_per_premises: usize,
    max_batch: usize,
    queue_per_shard: usize,
    baseline_records_per_sec: f64,
    shard_results: Vec<ShardLine>,
    required_speedup: f64,
    measured_speedup: f64,
    /// `measured_speedup / min(max_shards, cores)` — 1.0 is perfect
    /// scaling against the core-limited ideal.
    scaling_efficiency: f64,
    metrics_on_records_per_sec: f64,
    metrics_off_records_per_sec: f64,
    /// Best-of-N overhead, clamped at zero (negative raw overhead is
    /// scheduler noise, not a real negative cost).
    metrics_overhead_pct: f64,
    /// Unclamped best-of-N overhead, for honesty about the measurement.
    metrics_overhead_raw_pct: f64,
    /// Worst within-mode relative spread across the interleaved
    /// best-of-N samples — the run's noise floor.
    metrics_noise_floor_pct: f64,
    /// Tracing-overhead gate: throughput with request tracing at a
    /// production-like 1% head-sampling rate versus tracing fully off
    /// (head 0, tail capture disabled), both with metrics on. Same
    /// interleaved best-of-N protocol as the metrics gate.
    tracing_on_records_per_sec: f64,
    tracing_off_records_per_sec: f64,
    tracing_overhead_pct: f64,
    tracing_overhead_raw_pct: f64,
    tracing_noise_floor_pct: f64,
}

/// Swept shard counts: `GEM_FLEET_SHARDS=1,2` overrides the default
/// `1,2,4` (CI smoke boxes run the small counts only).
fn shard_counts() -> Vec<usize> {
    match std::env::var("GEM_FLEET_SHARDS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad GEM_FLEET_SHARDS: {v}")))
                .collect();
            assert!(!counts.is_empty(), "GEM_FLEET_SHARDS must name at least one count");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

fn main() {
    let records_per_premises = if quick() { 48 } else { 240 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("training {N_PREMISES} tenants...");
    let tenants = tenants();
    let baseline = run_baseline(&tenants[0], records_per_premises);
    println!("baseline single-monitor: {baseline:.1} records/s");
    let counts = shard_counts();
    let mut shard_results = Vec::new();
    for &shards in &counts {
        let r = run_fleet(&tenants, shards, records_per_premises, ObsOptions::default());
        println!(
            "shards={shards}: {:.1} records/s, p50 {:.2} ms (hist {:.2}), p99 {:.2} ms \
             (hist {:.2}), shed rate {:.4}, busy {:?}",
            r.records_per_sec,
            r.p50_latency_ms,
            r.hist_p50_ms,
            r.p99_latency_ms,
            r.hist_p99_ms,
            r.shed_rate,
            r.busy_fractions.iter().map(|b| (b * 100.0).round() / 100.0).collect::<Vec<f64>>(),
        );
        shard_results.push(ShardLine {
            shards,
            speedup_vs_baseline: r.records_per_sec / baseline,
            records_per_sec: r.records_per_sec,
            p50_latency_ms: r.p50_latency_ms,
            p99_latency_ms: r.p99_latency_ms,
            hist_p50_latency_ms: r.hist_p50_ms,
            hist_p99_latency_ms: r.hist_p99_ms,
            shed_rate: r.shed_rate,
            busy_fractions: r.busy_fractions,
            idle_fractions: r.idle_fractions,
        });
    }
    let max_shards = *counts.iter().max().unwrap();
    let measured = shard_results.last().unwrap().speedup_vs_baseline;
    // Hardware-aware gate: with at least 2 cores, S shards must deliver
    // 70% parallel efficiency of the core-limited ideal min(S, cores).
    // On a single core there is nothing to scale with; the fleet only
    // has to stay in the same league as the record-at-a-time baseline.
    let ideal = max_shards.min(cores) as f64;
    let required = if cores >= 2 { 0.7 * ideal } else { 0.5 };
    let efficiency = measured / ideal;
    println!(
        "speedup at {max_shards} shards: {measured:.2}x \
         (required {required:.2}x on {cores} cores, efficiency {efficiency:.2})"
    );
    assert!(
        measured >= required,
        "fleet at {max_shards} shards must be >={required:.2}x the single-monitor baseline \
         on {cores} cores, measured {measured:.2}x"
    );
    // Metrics overhead gate: full observability (histograms + span
    // timing + trace rings) versus metrics off. The true per-record
    // cost is a handful of relaxed atomics against ~100 µs of
    // inference, so the gate's enemy is scheduler noise, not metrics:
    // measure on a floor-sized workload (a quick run is otherwise tens
    // of milliseconds), run one shared discarded warmup so neither mode
    // pays first-run cache/allocator warmup, interleave off/on pairs,
    // and take best-of-N on both sides. The within-mode spread is
    // reported as the noise floor, and the raw difference is clamped at
    // zero — "metrics made it faster" is noise, not a negative cost.
    let overhead_records = records_per_premises.max(240);
    let pairs = if quick() { 3 } else { 4 };
    // Shared warmup, discarded.
    run_fleet(&tenants, max_shards, overhead_records, ObsOptions::default());
    let (mut off_samples, mut on_samples) = (Vec::new(), Vec::new());
    for _ in 0..pairs {
        off_samples.push(
            run_fleet(&tenants, max_shards, overhead_records, obs_mode(false, 0.0, 0.0))
                .records_per_sec,
        );
        on_samples.push(
            run_fleet(&tenants, max_shards, overhead_records, ObsOptions::default())
                .records_per_sec,
        );
    }
    let best = |s: &[f64]| s.iter().copied().fold(0f64, f64::max);
    let worst = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    let (best_off, best_on) = (best(&off_samples), best(&on_samples));
    let noise_floor_pct = ((best_off - worst(&off_samples)) / best_off)
        .max((best_on - worst(&on_samples)) / best_on)
        * 100.0;
    let overhead_raw_pct = (best_off - best_on) / best_off * 100.0;
    let overhead_pct = overhead_raw_pct.max(0.0);
    println!(
        "metrics overhead at {max_shards} shards: off {best_off:.1} rec/s, on {best_on:.1} rec/s \
         (raw {overhead_raw_pct:+.2}%, clamped {overhead_pct:.2}%, \
         noise floor {noise_floor_pct:.2}%)"
    );
    assert!(
        overhead_pct < 3.0,
        "metrics-on throughput must be within 3% of metrics-off \
         (off {best_off:.1} rec/s, on {best_on:.1} rec/s, overhead {overhead_pct:.2}%)"
    );
    // Tracing overhead gate: per-record span stamping + retention at a
    // production-like 1% head-sampling rate, versus tracing fully off
    // (head rate 0 and tail capture disabled, so the sampler is inert
    // and the per-record fast path takes no stamps at all). Metrics
    // stay on in both modes — this isolates the tracing cost from the
    // histogram cost the previous gate already bounded. Same protocol:
    // interleaved pairs, best-of-N, spread as the noise floor, raw
    // difference clamped at zero.
    let (mut trace_off_samples, mut trace_on_samples) = (Vec::new(), Vec::new());
    for _ in 0..pairs {
        trace_off_samples.push(
            run_fleet(&tenants, max_shards, overhead_records, obs_mode(true, 0.0, 0.0))
                .records_per_sec,
        );
        trace_on_samples.push(
            run_fleet(&tenants, max_shards, overhead_records, obs_mode(true, 0.01, 250.0))
                .records_per_sec,
        );
    }
    let (best_trace_off, best_trace_on) = (best(&trace_off_samples), best(&trace_on_samples));
    let tracing_noise_floor_pct = ((best_trace_off - worst(&trace_off_samples)) / best_trace_off)
        .max((best_trace_on - worst(&trace_on_samples)) / best_trace_on)
        * 100.0;
    let tracing_overhead_raw_pct = (best_trace_off - best_trace_on) / best_trace_off * 100.0;
    let tracing_overhead_pct = tracing_overhead_raw_pct.max(0.0);
    println!(
        "tracing overhead at {max_shards} shards: off {best_trace_off:.1} rec/s, \
         1% sampled {best_trace_on:.1} rec/s (raw {tracing_overhead_raw_pct:+.2}%, \
         clamped {tracing_overhead_pct:.2}%, noise floor {tracing_noise_floor_pct:.2}%)"
    );
    assert!(
        tracing_overhead_pct < 3.0,
        "tracing at 1% sampling must be within 3% of tracing-off \
         (off {best_trace_off:.1} rec/s, on {best_trace_on:.1} rec/s, \
         overhead {tracing_overhead_pct:.2}%)"
    );
    let line = FleetBenchLine {
        bench: "fleet",
        cores,
        premises: N_PREMISES,
        records_per_premises,
        max_batch: MAX_BATCH,
        queue_per_shard: QUEUE_PER_SHARD,
        baseline_records_per_sec: baseline,
        shard_results,
        required_speedup: required,
        measured_speedup: measured,
        scaling_efficiency: efficiency,
        metrics_on_records_per_sec: best_on,
        metrics_off_records_per_sec: best_off,
        metrics_overhead_pct: overhead_pct,
        metrics_overhead_raw_pct: overhead_raw_pct,
        metrics_noise_floor_pct: noise_floor_pct,
        tracing_on_records_per_sec: best_trace_on,
        tracing_off_records_per_sec: best_trace_off,
        tracing_overhead_pct,
        tracing_overhead_raw_pct,
        tracing_noise_floor_pct,
    };
    let json = serde_json::to_string(&line).expect("serialize bench line");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_fleet.json");
    writeln!(f, "{json}").expect("append BENCH_fleet.json");
    println!("appended results to {path}");
}
