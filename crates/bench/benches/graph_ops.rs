//! Micro-benchmarks of the bipartite-graph substrate: record insertion,
//! weighted neighbor sampling, random walks and alias tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gem_graph::{AliasTable, BipartiteGraph, NodeId, RecordId, WalkConfig, WalkPairs, WeightFn};
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};
use rand::RngExt;

fn synthetic_record(i: u64, n_macs: u64) -> SignalRecord {
    SignalRecord::from_pairs(
        i as f64,
        (0..12).map(|k| (MacAddr::from_raw((i * 7 + k * 13) % n_macs), -45.0 - k as f32 * 4.0)),
    )
}

fn graph(n: u64) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::default());
    for i in 0..n {
        g.add_record(&synthetic_record(i, 60));
    }
    g
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(40);

    group.bench_function("add_record_into_500", |b| {
        let base = graph(500);
        let rec = synthetic_record(9999, 60);
        b.iter_with_setup(
            || base.clone(),
            |mut g| {
                black_box(g.add_record(black_box(&rec)));
                g
            },
        )
    });

    group.bench_function("weighted_sample_8_neighbors", |b| {
        let g = graph(500);
        let mut rng = child_rng(1, 2);
        b.iter(|| black_box(g.sample_neighbors(NodeId::Record(RecordId(250)), 8, &mut rng)))
    });

    group.bench_function("walk_pairs_one_epoch_200_records", |b| {
        let g = graph(200);
        let mut rng = child_rng(3, 4);
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 4 };
        b.iter(|| black_box(WalkPairs::generate(&g, cfg, &mut rng)))
    });

    group.bench_function("alias_table_build_1000", |b| {
        let mut rng = child_rng(5, 6);
        let weights: Vec<f64> = (0..1000).map(|_| rng.random_range(0.1..10.0)).collect();
        b.iter(|| black_box(AliasTable::new(black_box(&weights))))
    });

    group.bench_function("alias_table_sample", |b| {
        let mut rng = child_rng(7, 8);
        let weights: Vec<f64> = (0..1000).map(|_| rng.random_range(0.1..10.0)).collect();
        let table = AliasTable::new(&weights).unwrap();
        b.iter(|| black_box(table.sample(&mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
