//! Criterion counterpart of the paper's Table III: per-record inference
//! time, broken into embedding generation, in-out detection and model
//! update.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gem_bench::{eval_dataset, evaluation_users};
use gem_core::{Gem, GemConfig};

fn bench_inference(c: &mut Criterion) {
    let ds = eval_dataset(&evaluation_users()[5]);
    let mut group = c.benchmark_group("table3_inference");
    group.sample_size(30);

    // Embedding generation: graph insertion + K-round aggregation.
    {
        let mut gem = Gem::fit(GemConfig::default(), &ds.train);
        let mut idx = 0usize;
        group.bench_function("embedding_generation", |b| {
            b.iter(|| {
                let rec = &ds.test[idx % ds.test.len()].record;
                idx += 1;
                black_box(gem.add_and_embed(black_box(rec)))
            })
        });
    }

    // In-out detection on a fixed embedding.
    {
        let mut gem = Gem::fit(GemConfig::default(), &ds.train);
        let h =
            ds.test.iter().find_map(|t| gem.add_and_embed(&t.record)).expect("embeddable record");
        group.bench_function("in_out_detection", |b| {
            b.iter(|| black_box(gem.detect_only(black_box(&h))))
        });
    }

    // Online model update (histogram absorption + re-anchoring).
    {
        let mut gem = Gem::fit(GemConfig::default(), &ds.train);
        let h =
            ds.test.iter().find_map(|t| gem.add_and_embed(&t.record)).expect("embeddable record");
        group.bench_function("model_update", |b| {
            b.iter(|| black_box(gem.update_with(black_box(&h))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
