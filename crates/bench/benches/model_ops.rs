//! Micro-benchmarks of the learning stack: autograd matmul, a BiSAGE
//! training epoch, histogram fitting and scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gem_core::{BiSage, BiSageConfig, EnhancedDetector, HistogramModel};
use gem_graph::{BipartiteGraph, WeightFn};
use gem_nn::tape::{Graph, ParamStore};
use gem_nn::{init, Tensor};
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};

fn cluster_graph(n: u64) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::default());
    for i in 0..n {
        g.add_record(&SignalRecord::from_pairs(
            i as f64,
            (0..10).map(|k| (MacAddr::from_raw((i / 20) * 10 + k), -50.0 - k as f32 * 3.0)),
        ));
    }
    g
}

fn embeddings(rows: usize, dim: usize) -> Tensor {
    let mut rng = child_rng(11, 12);
    init::unit_rows(&mut rng, rows, dim)
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_ops");
    group.sample_size(20);

    group.bench_function("tape_matmul_backward_256x64x32", |b| {
        let mut rng = child_rng(13, 14);
        let x = init::xavier_uniform(&mut rng, 256, 64);
        let target = Tensor::zeros(256, 32);
        let mut store = ParamStore::new();
        let w = store.add("w", init::xavier_uniform(&mut rng, 64, 32));
        b.iter(|| {
            store.zero_grads();
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.param(&store, w);
            let y = g.matmul(xv, wv);
            let loss = g.mse_mean(y, target.clone());
            g.backward(loss, &mut store);
            black_box(store.grad_norm())
        })
    });

    group.bench_function("bisage_fit_120_records", |b| {
        let graph = cluster_graph(120);
        let cfg = BiSageConfig {
            epochs: 1,
            dim: 16,
            sample_sizes: vec![6, 3],
            ..BiSageConfig::default()
        };
        b.iter(|| {
            let mut model = BiSage::new(cfg.clone());
            black_box(model.fit(black_box(&graph)))
        })
    });

    group.bench_function("bisage_embed_one_record", |b| {
        let graph = cluster_graph(200);
        let cfg = BiSageConfig {
            epochs: 1,
            dim: 16,
            sample_sizes: vec![6, 3],
            ..BiSageConfig::default()
        };
        let mut model = BiSage::new(cfg);
        model.fit(&graph);
        let mut rng = child_rng(15, 16);
        b.iter(|| black_box(model.embed_record(&graph, gem_graph::RecordId(100), &mut rng)))
    });

    group.bench_function("hbos_fit_300x32", |b| {
        let train = embeddings(300, 32);
        b.iter(|| black_box(HistogramModel::fit(black_box(&train), 10)))
    });

    group.bench_function("detector_score", |b| {
        let train = embeddings(300, 32);
        let det = EnhancedDetector::fit(&train, 10, 0.06, 0.005, 0.001);
        let probe = embeddings(1, 32);
        b.iter(|| black_box(det.score(black_box(probe.row(0)))))
    });

    group.bench_function("detector_update_with_reanchor", |b| {
        let train = embeddings(300, 32);
        let probe = embeddings(1, 32);
        b.iter_with_setup(
            || EnhancedDetector::fit(&train, 10, 0.06, 0.9, 0.89),
            |mut det| {
                black_box(det.detect_and_update(probe.row(0)));
                det
            },
        )
    });

    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
