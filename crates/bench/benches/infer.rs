//! Streaming-inference benchmarks: the tape-free engine against the
//! tape-based reference on the single-record path, plus the fused batch
//! path, with MAC-aggregate cache hit rates and a steady-state
//! allocation audit.
//!
//! Run with `cargo bench -p gem-bench --bench infer`. Each run appends
//! one JSON line to `BENCH_infer.json` at the repository root.
//!
//! With `--features count-allocs` the run additionally audits the warm
//! single-record engine path and **fails** if it performs any heap
//! allocation — this is the zero-alloc regression gate wired into CI's
//! bench-smoke job. The engine must also be at least 3x faster than the
//! tape path on the single-record benchmark; the run fails otherwise.
//!
//! `GEM_BENCH_QUICK=1` shrinks criterion sampling for CI smoke runs.

use std::hint::black_box;
use std::io::Write;

use criterion::Criterion;

use gem_bench::allocs;
use gem_core::{BiSage, BiSageConfig, EnhancedDetector, InferenceEngine};
use gem_graph::{BipartiteGraph, NodeId, RecordId, WeightFn};
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};

const N_TRAIN: u64 = 300;
const N_STREAMED: usize = 150;

/// Training records in clusters of 20 sharing a 10-MAC block (same shape
/// as the train bench). Cluster sizes keep every MAC neighborhood under
/// the inference cap, so the capped-sort path never runs during the
/// steady-state audit.
fn cluster_graph(n: u64) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::default());
    for i in 0..n {
        g.add_record(&SignalRecord::from_pairs(
            i as f64,
            (0..10).map(|k| (MacAddr::from_raw((i / 20) * 10 + k), -50.0 - k as f32 * 3.0)),
        ));
    }
    g
}

/// A streamed scan from one of the training clusters: 8 of its 10 MACs
/// at perturbed signal strengths.
fn streamed_record(i: usize) -> SignalRecord {
    let cluster = (i as u64) % (N_TRAIN / 20);
    SignalRecord::from_pairs(
        (N_TRAIN as usize + i) as f64,
        (0..8).map(|k| {
            (MacAddr::from_raw(cluster * 10 + k), -52.0 - k as f32 * 3.0 - (i % 5) as f32)
        }),
    )
}

fn model_cfg() -> BiSageConfig {
    BiSageConfig {
        dim: 32,
        epochs: 1,
        batch_size: 128,
        sample_sizes: vec![8, 4],
        ..BiSageConfig::default()
    }
}

struct Fixture {
    model: BiSage,
    graph: BipartiteGraph,
    targets: Vec<RecordId>,
    trusted: Vec<bool>,
}

/// Fits the model, streams `N_STREAMED` in-premises records into the
/// graph and initializes their rows — the steady state a long-running
/// monitor sits in.
fn fixture() -> Fixture {
    let mut graph = cluster_graph(N_TRAIN);
    let mut model = BiSage::new(model_cfg());
    model.fit(&graph);
    let mut rng = child_rng(7, 0x1FE2);
    let mut trusted = vec![true; graph.n_records()];
    let mut targets = Vec::with_capacity(N_STREAMED);
    for i in 0..N_STREAMED {
        let rid = graph.add_record(&streamed_record(i));
        trusted.push(true);
        let bits: &[bool] = &trusted;
        let filter = move |r: RecordId| bits[r.0 as usize];
        model.ensure_rows_for_record(&graph, rid, &mut rng, Some(&filter));
        targets.push(rid);
    }
    Fixture { model, graph, targets, trusted }
}

fn bench_paths(c: &mut Criterion, fx: &Fixture) {
    let mut group = c.benchmark_group("streaming_inference");
    group.sample_size(30);

    // Tape-based reference: per-record graph build + forward.
    {
        let mut idx = 0usize;
        group.bench_function("tape_single", |b| {
            b.iter(|| {
                let rid = fx.targets[idx % fx.targets.len()];
                idx += 1;
                let bits: &[bool] = &fx.trusted;
                let wrapped = move |r: RecordId| r == rid || bits[r.0 as usize];
                black_box(fx.model.embed_nodes_filtered(
                    black_box(&fx.graph),
                    &[NodeId::Record(rid)],
                    Some(&wrapped),
                ))
            })
        });
    }

    // Tape-free engine, persistent scratch + warm MAC-aggregate cache.
    {
        let mut engine = InferenceEngine::new();
        let mut out = Vec::new();
        let mut idx = 0usize;
        group.bench_function("engine_single", |b| {
            b.iter(|| {
                let rid = fx.targets[idx % fx.targets.len()];
                idx += 1;
                engine.embed_record_into(
                    black_box(&fx.model),
                    black_box(&fx.graph),
                    rid,
                    Some(&fx.trusted),
                    &mut out,
                );
                black_box(&out);
            })
        });
    }

    // Fused batch path over the whole streamed set.
    {
        let mut engine = InferenceEngine::new();
        group.bench_function("engine_batch", |b| {
            b.iter(|| {
                black_box(engine.embed_records_batch(
                    black_box(&fx.model),
                    black_box(&fx.graph),
                    &fx.targets,
                    Some(&fx.trusted),
                ))
            })
        });
    }
    group.finish();
}

/// Detector scoring A/B: the f64 histogram scorer versus the int8
/// quantized LUT scorer, over the streamed records' embeddings. Also
/// audits the quantized decisions against the f64 decisions — a flip is
/// only legal when the f64 score sits within the quantizer's documented
/// error bound of the threshold it crossed. Returns the number of
/// decision flips (recorded into the bench line, gated here).
fn bench_scoring(c: &mut Criterion, fx: &Fixture) -> usize {
    let train = fx.model.embed_all_records(&fx.graph);
    // Same detector construction as `Gem::fit` with GemConfig defaults.
    let det = EnhancedDetector::fit_calibrated(&train, 10, 0.06, 0.005, 0.001, 0.98, 0.90);
    let qdet = det.quantized();
    let samples: Vec<Vec<f32>> = (0..train.rows()).map(|i| train.row(i).to_vec()).collect();

    let mut group = c.benchmark_group("detector_scoring");
    group.sample_size(30);
    {
        let mut idx = 0usize;
        group.bench_function("score_f64", |b| {
            b.iter(|| {
                let s = &samples[idx % samples.len()];
                idx += 1;
                black_box(det.score(black_box(s)))
            })
        });
    }
    {
        let mut idx = 0usize;
        group.bench_function("score_quantized", |b| {
            b.iter(|| {
                let s = &samples[idx % samples.len()];
                idx += 1;
                black_box(qdet.score(black_box(s)))
            })
        });
    }
    group.finish();

    let margin = qdet.max_score_error();
    let mut flips = 0usize;
    for s in &samples {
        let d = det.detect(s);
        let q = qdet.detect(s);
        if d.is_outlier != q.is_outlier {
            flips += 1;
            assert!(
                (d.score - det.tau_u).abs() <= margin,
                "quantized outlier flip outside the error margin: f64 score {} vs tau_u {} \
                 (margin {margin})",
                d.score,
                det.tau_u
            );
        }
    }
    println!(
        "detector decisions: {flips}/{} quantized flips, all within margin {margin:.2e}",
        samples.len()
    );
    flips
}

/// Steady-state audit of the warm single-record engine path: cache hit
/// rate always; with `--features count-allocs` also the allocation
/// count, which must be exactly zero.
fn audit_steady_state(fx: &Fixture) -> (f64, Option<u64>) {
    let mut engine = InferenceEngine::new();
    let mut out = Vec::new();
    // Warm pass: populates the cache and grows every scratch buffer.
    for &rid in &fx.targets {
        engine.embed_record_into(&fx.model, &fx.graph, rid, Some(&fx.trusted), &mut out);
    }
    let warm_stats = engine.cache_stats();
    allocs::reset();
    let n = 4 * fx.targets.len();
    for i in 0..n {
        let rid = fx.targets[i % fx.targets.len()];
        engine.embed_record_into(&fx.model, &fx.graph, rid, Some(&fx.trusted), &mut out);
    }
    let steady = engine.cache_stats();
    let hits = steady.hits - warm_stats.hits;
    let misses = steady.misses - warm_stats.misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let audit = allocs::ENABLED.then(|| {
        let total = allocs::stats().allocs;
        assert_eq!(
            total, 0,
            "steady-state single-record inference allocated {total} times over {n} records"
        );
        total
    });
    println!(
        "steady-state cache: {hits} hits / {misses} misses (rate {hit_rate:.3}), allocs {audit:?}"
    );
    (hit_rate, audit)
}

#[derive(serde::Serialize)]
struct InferBenchLine {
    bench: &'static str,
    pool_threads: usize,
    n_streamed: usize,
    dim: usize,
    tape_single_median_ns: f64,
    engine_single_median_ns: f64,
    single_speedup: f64,
    engine_single_records_per_sec: f64,
    batch_median_ns: f64,
    batch_records_per_sec: f64,
    /// Steady-state MAC-aggregate cache hit rate on the warm engine.
    cache_hit_rate: f64,
    /// Heap allocations per warm single-record inference; `null` unless
    /// built with `--features count-allocs`. Gated to exactly 0.
    allocs_per_inference: Option<u64>,
    /// Which kernel backend the dispatcher resolved for this run.
    kernel_backend: &'static str,
    score_f64_median_ns: f64,
    score_quantized_median_ns: f64,
    /// f64-vs-int8 scoring speedup; gated to >= 1.5x on full runs.
    quantized_scoring_speedup: f64,
    /// Quantized-vs-f64 outlier decision flips over the training set
    /// (each one verified to sit within the quantizer's error margin).
    quantized_decision_flips: usize,
}

fn append_results(c: &Criterion, hit_rate: f64, alloc_total: Option<u64>, flips: usize) {
    let find = |name: &str| {
        c.reports()
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench report {name}"))
    };
    let tape = find("tape_single");
    let engine = find("engine_single");
    let batch = find("engine_batch");
    let score_f64 = find("score_f64");
    let score_quant = find("score_quantized");
    let speedup = tape.median_ns / engine.median_ns;
    assert!(
        speedup >= 3.0,
        "engine single-record path must be >=3x the tape path, measured {speedup:.2}x"
    );
    let quant_speedup = score_f64.median_ns / score_quant.median_ns;
    // Quick-mode runs take 2 samples — too noisy for a hard ratio gate.
    if std::env::var("GEM_BENCH_QUICK").as_deref() != Ok("1") {
        assert!(
            quant_speedup >= 1.5,
            "int8 quantized scoring must be >=1.5x the f64 scorer, measured {quant_speedup:.2}x"
        );
    }
    let line = InferBenchLine {
        bench: "infer",
        pool_threads: gem_par::num_threads(),
        n_streamed: N_STREAMED,
        dim: model_cfg().dim,
        tape_single_median_ns: tape.median_ns,
        engine_single_median_ns: engine.median_ns,
        single_speedup: speedup,
        engine_single_records_per_sec: 1e9 / engine.median_ns,
        batch_median_ns: batch.median_ns,
        batch_records_per_sec: N_STREAMED as f64 / (batch.median_ns * 1e-9),
        cache_hit_rate: hit_rate,
        allocs_per_inference: alloc_total,
        kernel_backend: gem_nn::kernels::backend_name(),
        score_f64_median_ns: score_f64.median_ns,
        score_quantized_median_ns: score_quant.median_ns,
        quantized_scoring_speedup: quant_speedup,
        quantized_decision_flips: flips,
    };
    let json = serde_json::to_string(&line).expect("serialize bench line");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_infer.json");
    writeln!(f, "{json}").expect("append BENCH_infer.json");
    println!("appended results to {path}");
}

fn main() {
    // CI smoke mode: enough sampling to exercise every code path, the
    // zero-alloc gate and the JSON plumbing, without paying for
    // statistically stable numbers.
    if std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1") {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            std::env::set_var("CRITERION_SAMPLES", "2");
        }
        if std::env::var("CRITERION_MAX_SECS").is_err() {
            std::env::set_var("CRITERION_MAX_SECS", "2");
        }
    }
    let mut c = Criterion::default();
    let fx = fixture();
    bench_paths(&mut c, &fx);
    let flips = bench_scoring(&mut c, &fx);
    let (hit_rate, alloc_total) = audit_steady_state(&fx);
    c.final_summary();
    append_results(&c, hit_rate, alloc_total, flips);
}
