//! Training-path benchmarks: the blocked matmul kernels and data-parallel
//! BiSAGE `fit()` throughput (positive pairs consumed per second),
//! sequential vs. worker pool.
//!
//! Run with `cargo bench -p gem-bench --bench train`. Each run appends one
//! JSON line to `BENCH_train.json` at the repository root; set
//! `GEM_NUM_THREADS` to size the pool (the container may expose fewer
//! cores than the pool has workers, in which case the recorded speedup is
//! bounded by the hardware, not the implementation).

use std::hint::black_box;
use std::io::Write;

use criterion::Criterion;

use gem_core::{BiSage, BiSageConfig};
use gem_graph::{BipartiteGraph, WeightFn};
use gem_nn::init;
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};

/// Records in clusters of 20 sharing a 10-MAC block (same shape as the
/// model_ops bench, scaled up so `fit` has real work per epoch).
fn cluster_graph(n: u64) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::default());
    for i in 0..n {
        g.add_record(&SignalRecord::from_pairs(
            i as f64,
            (0..10).map(|k| (MacAddr::from_raw((i / 20) * 10 + k), -50.0 - k as f32 * 3.0)),
        ));
    }
    g
}

fn fit_cfg(num_threads: usize) -> BiSageConfig {
    BiSageConfig {
        dim: 32,
        epochs: 1,
        batch_size: 128,
        sample_sizes: vec![8, 4],
        grad_accum: 4,
        num_threads,
        ..BiSageConfig::default()
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = child_rng(21, 22);
    // Non-square, non-multiple-of-tile shapes exercise the remainder
    // paths of the blocked kernels as well as the main tiles.
    let (m, k, n) = (250, 130, 70);
    let a = init::xavier_uniform(&mut rng, m, k);
    let b = init::xavier_uniform(&mut rng, k, n);
    let a_t = init::xavier_uniform(&mut rng, k, m);
    let b_t = init::xavier_uniform(&mut rng, n, k);

    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(40);
    group.bench_function("matmul_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });
    group.bench_function("matmul_tn_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a_t).matmul_tn(black_box(&b))))
    });
    group.bench_function("matmul_nt_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul_nt(black_box(&b_t))))
    });
    group.finish();
}

/// Positive pairs one `fit()` call consumes under `fit_cfg` (deterministic
/// for a fixed graph and seed).
fn pairs_per_fit(graph: &BipartiteGraph) -> usize {
    let mut model = BiSage::new(fit_cfg(1));
    model.fit(graph).pairs_seen
}

fn bench_fit(c: &mut Criterion) {
    let graph = cluster_graph(200);
    let mut group = c.benchmark_group("bisage_fit");
    group.sample_size(10);
    group.bench_function("fit_200_records_seq", |bch| {
        bch.iter(|| {
            let mut model = BiSage::new(fit_cfg(1));
            black_box(model.fit(black_box(&graph)))
        })
    });
    group.bench_function("fit_200_records_pool", |bch| {
        bch.iter(|| {
            let mut model = BiSage::new(fit_cfg(0));
            black_box(model.fit(black_box(&graph)))
        })
    });
    group.finish();
}

#[derive(serde::Serialize)]
struct KernelLine {
    name: String,
    median_ns: f64,
    min_ns: f64,
}

#[derive(serde::Serialize)]
struct TrainBenchLine {
    bench: &'static str,
    pool_threads: usize,
    pairs_per_fit: usize,
    seq_median_ns: f64,
    pool_median_ns: f64,
    seq_pairs_per_sec: f64,
    pool_pairs_per_sec: f64,
    speedup: f64,
    kernels: Vec<KernelLine>,
}

fn append_results(c: &Criterion, pairs: usize) {
    let find = |name: &str| {
        c.reports()
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench report {name}"))
    };
    let seq = find("fit_200_records_seq").median_ns;
    let pool = find("fit_200_records_pool").median_ns;
    let line = TrainBenchLine {
        bench: "train",
        pool_threads: gem_par::num_threads(),
        pairs_per_fit: pairs,
        seq_median_ns: seq,
        pool_median_ns: pool,
        seq_pairs_per_sec: pairs as f64 / (seq * 1e-9),
        pool_pairs_per_sec: pairs as f64 / (pool * 1e-9),
        speedup: seq / pool,
        kernels: c
            .reports()
            .iter()
            .filter(|r| r.group == "matmul_kernels")
            .map(|r| KernelLine {
                name: r.name.clone(),
                median_ns: r.median_ns,
                min_ns: r.min_ns,
            })
            .collect(),
    };
    let json = serde_json::to_string(&line).expect("serialize bench line");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_train.json");
    writeln!(f, "{json}").expect("append BENCH_train.json");
    println!("appended results to {path}");
}

fn main() {
    let mut c = Criterion::default();
    bench_kernels(&mut c);
    let graph = cluster_graph(200);
    let pairs = pairs_per_fit(&graph);
    bench_fit(&mut c);
    c.final_summary();
    append_results(&c, pairs);
}
