//! Training-path benchmarks: the blocked matmul kernels and data-parallel
//! BiSAGE `fit()` throughput (positive pairs consumed per second),
//! sequential vs. worker pool.
//!
//! Run with `cargo bench -p gem-bench --bench train`. Each run appends one
//! JSON line to `BENCH_train.json` at the repository root; set
//! `GEM_NUM_THREADS` (or `GEM_PAR_THREADS`) to size the pool (the
//! container may expose fewer cores than the pool has workers, in which
//! case the recorded speedup is bounded by the hardware, not the
//! implementation).
//!
//! Besides the seq-vs-pool pair, the run sweeps the pooled fit at 1, 2
//! and 4 threads (capped through `gem_par::thread_cap`) and records the
//! per-thread-count speedup table; on a machine with at least 4 cores
//! the 4-thread fit must clear 1.8x over single-threaded — the gate the
//! tree-reduced gradient merge is accountable to.
//!
//! With `--features count-allocs` the run also audits the allocation
//! budget of the training loop: a counting global allocator is windowed
//! around each optimizer step group (`BiSage::fit_instrumented`), and
//! the JSON line gains `allocs_per_step_seq` / `allocs_per_step_pool`
//! (median heap calls per post-warm-up step — the arena-tape sequential
//! path targets exactly 0) plus `peak_bytes` for the sequential fit.
//!
//! `GEM_BENCH_QUICK=1` shrinks criterion sampling for CI smoke runs.

use std::hint::black_box;
use std::io::Write;

use criterion::Criterion;

use gem_bench::allocs;
use gem_core::{BiSage, BiSageConfig, StepEvent};
use gem_graph::{BipartiteGraph, WeightFn};
use gem_nn::kernels::{self, Precision};
use gem_nn::{init, Backend};
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};

/// Records in clusters of 20 sharing a 10-MAC block (same shape as the
/// model_ops bench, scaled up so `fit` has real work per epoch).
fn cluster_graph(n: u64) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::default());
    for i in 0..n {
        g.add_record(&SignalRecord::from_pairs(
            i as f64,
            (0..10).map(|k| (MacAddr::from_raw((i / 20) * 10 + k), -50.0 - k as f32 * 3.0)),
        ));
    }
    g
}

fn fit_cfg(num_threads: usize) -> BiSageConfig {
    BiSageConfig {
        dim: 32,
        epochs: 1,
        batch_size: 128,
        sample_sizes: vec![8, 4],
        grad_accum: 4,
        num_threads,
        ..BiSageConfig::default()
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = child_rng(21, 22);
    // Non-square, non-multiple-of-tile shapes exercise the remainder
    // paths of the blocked kernels as well as the main tiles.
    let (m, k, n) = (250, 130, 70);
    let a = init::xavier_uniform(&mut rng, m, k);
    let b = init::xavier_uniform(&mut rng, k, n);
    let a_t = init::xavier_uniform(&mut rng, k, m);
    let b_t = init::xavier_uniform(&mut rng, n, k);

    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(40);
    group.bench_function("matmul_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });
    group.bench_function("matmul_tn_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a_t).matmul_tn(black_box(&b))))
    });
    group.bench_function("matmul_nt_250x130x70", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul_nt(black_box(&b_t))))
    });
    group.finish();

    // Forced-scalar reference for the scalar-vs-SIMD speedup table,
    // measured at the kernel layer with an explicit backend (the
    // dispatcher is resolved once per process, so it cannot be flipped
    // mid-run). `nt` replicates the dispatched path's rhsᵀ pack.
    let mut group = c.benchmark_group("matmul_kernels_scalar");
    group.sample_size(40);
    let (mut out, mut packed) = (vec![0.0f32; m * n], vec![0.0f32; k * n]);
    group.bench_function("scalar_matmul_250x130x70", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            kernels::matmul_with(
                Backend::Scalar,
                Precision::Strict,
                black_box(a.data()),
                black_box(b.data()),
                &mut out,
                m,
                k,
                n,
            );
            black_box(out[0])
        })
    });
    group.bench_function("scalar_matmul_tn_250x130x70", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            kernels::matmul_tn_with(
                Backend::Scalar,
                Precision::Strict,
                black_box(a_t.data()),
                black_box(b.data()),
                &mut out,
                k,
                m,
                n,
            );
            black_box(out[0])
        })
    });
    group.bench_function("scalar_matmul_nt_250x130x70", |bch| {
        bch.iter(|| {
            let bt = black_box(b_t.data());
            for kk in 0..k {
                for j in 0..n {
                    packed[kk * n + j] = bt[j * k + kk];
                }
            }
            out.fill(0.0);
            kernels::matmul_with(
                Backend::Scalar,
                Precision::Strict,
                black_box(a.data()),
                &packed,
                &mut out,
                m,
                k,
                n,
            );
            black_box(out[0])
        })
    });
    group.finish();
}

/// Positive pairs one `fit()` call consumes under `fit_cfg` (deterministic
/// for a fixed graph and seed).
fn pairs_per_fit(graph: &BipartiteGraph) -> usize {
    let mut model = BiSage::new(fit_cfg(1));
    model.fit(graph).pairs_seen
}

fn bench_fit(c: &mut Criterion) {
    let graph = cluster_graph(200);
    let mut group = c.benchmark_group("bisage_fit");
    group.sample_size(10);
    group.bench_function("fit_200_records_seq", |bch| {
        bch.iter(|| {
            let mut model = BiSage::new(fit_cfg(1));
            black_box(model.fit(black_box(&graph)))
        })
    });
    group.bench_function("fit_200_records_pool", |bch| {
        bch.iter(|| {
            let mut model = BiSage::new(fit_cfg(0));
            black_box(model.fit(black_box(&graph)))
        })
    });
    group.finish();
}

#[derive(serde::Serialize)]
struct ThreadSweepLine {
    threads: usize,
    median_ns: f64,
    /// Speedup over the 1-thread fit of the same sweep.
    speedup: f64,
}

/// Pooled fit wall time at fixed thread caps. `fit_cfg(t)` routes the
/// cap through `BiSageConfig::num_threads`, which the trainer applies
/// with `gem_par::thread_cap` — the same mechanism callers use, so the
/// sweep measures the real code path. On a machine whose pool has
/// fewer workers than the cap, the extra threads simply don't exist
/// and the curve flattens (the recorded `speedup` says so honestly).
fn sweep_threads(graph: &BipartiteGraph) -> Vec<ThreadSweepLine> {
    let iters = if std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1") { 2 } else { 5 };
    let mut lines: Vec<ThreadSweepLine> = Vec::new();
    let mut base_ns = f64::NAN;
    for &threads in &[1usize, 2, 4] {
        let mut samples: Vec<f64> = (0..iters)
            .map(|_| {
                let mut model = BiSage::new(fit_cfg(threads));
                let start = std::time::Instant::now();
                black_box(model.fit(black_box(graph)));
                start.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples[samples.len() / 2];
        if threads == 1 {
            base_ns = median_ns;
        }
        lines.push(ThreadSweepLine { threads, median_ns, speedup: base_ns / median_ns });
    }
    lines
}

/// Allocation audit of one instrumented fit: heap calls are windowed
/// between `GroupStart` and `GroupEnd` (one optimizer step each); the
/// first [`ALLOC_WARMUP_GROUPS`] windows warm the arenas, free-lists and
/// scratch buffers and are discarded, the rest are summarized by their
/// median. Returns `None` unless built with `--features count-allocs`.
fn measure_allocs(graph: &BipartiteGraph, num_threads: usize) -> Option<(u64, u64)> {
    const ALLOC_WARMUP_GROUPS: usize = 3;
    if !allocs::ENABLED {
        return None;
    }
    let mut model = BiSage::new(fit_cfg(num_threads));
    let mut mark = 0u64;
    let mut per_group: Vec<u64> = Vec::new();
    allocs::reset();
    model.fit_instrumented(graph, &mut |ev| match ev {
        StepEvent::GroupStart => mark = allocs::stats().allocs,
        StepEvent::GroupEnd => per_group.push(allocs::stats().allocs - mark),
    });
    let peak = allocs::stats().peak_bytes;
    let mut steady = per_group.split_off(ALLOC_WARMUP_GROUPS.min(per_group.len()));
    steady.sort_unstable();
    let median = steady.get(steady.len() / 2).copied().unwrap_or(0);
    let label = if num_threads == 1 { "seq" } else { "pool" };
    println!(
        "allocs/step ({label}): median {median} over {} steady groups, peak {peak} bytes",
        steady.len(),
    );
    Some((median, peak))
}

#[derive(serde::Serialize)]
struct KernelLine {
    name: String,
    median_ns: f64,
    min_ns: f64,
}

#[derive(serde::Serialize)]
struct KernelSpeedup {
    name: String,
    dispatched_median_ns: f64,
    scalar_median_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct TrainBenchLine {
    bench: &'static str,
    pool_threads: usize,
    cores: usize,
    pairs_per_fit: usize,
    seq_median_ns: f64,
    seq_min_ns: f64,
    pool_median_ns: f64,
    pool_min_ns: f64,
    seq_pairs_per_sec: f64,
    pool_pairs_per_sec: f64,
    speedup: f64,
    /// Pooled-fit wall time at fixed thread caps (1, 2, 4) with the
    /// speedup of each over the 1-thread run.
    thread_sweep: Vec<ThreadSweepLine>,
    /// Median heap calls per post-warm-up optimizer step, sequential
    /// fit; `null` unless built with `--features count-allocs`.
    allocs_per_step_seq: Option<u64>,
    /// Same audit with the worker pool (job dispatch boxes closures, so
    /// this one is small-but-nonzero by design).
    allocs_per_step_pool: Option<u64>,
    /// High-water mark of live heap bytes across the sequential fit.
    peak_bytes: Option<u64>,
    kernels: Vec<KernelLine>,
    /// Which kernel backend the dispatcher resolved for this run.
    kernel_backend: &'static str,
    /// Per-kernel dispatched-vs-forced-scalar A/B (speedup ≈ 1 when the
    /// dispatcher itself resolved to scalar).
    kernel_speedups: Vec<KernelSpeedup>,
}

fn append_results(
    c: &Criterion,
    pairs: usize,
    sweep: Vec<ThreadSweepLine>,
    seq_audit: Option<(u64, u64)>,
    pool_audit: Option<(u64, u64)>,
) {
    let find = |name: &str| {
        c.reports()
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench report {name}"))
    };
    let seq = find("fit_200_records_seq");
    let pool = find("fit_200_records_pool");
    let line = TrainBenchLine {
        bench: "train",
        pool_threads: gem_par::num_threads(),
        cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        pairs_per_fit: pairs,
        seq_median_ns: seq.median_ns,
        seq_min_ns: seq.min_ns,
        pool_median_ns: pool.median_ns,
        pool_min_ns: pool.min_ns,
        seq_pairs_per_sec: pairs as f64 / (seq.median_ns * 1e-9),
        pool_pairs_per_sec: pairs as f64 / (pool.median_ns * 1e-9),
        speedup: seq.median_ns / pool.median_ns,
        thread_sweep: sweep,
        allocs_per_step_seq: seq_audit.map(|(a, _)| a),
        allocs_per_step_pool: pool_audit.map(|(a, _)| a),
        peak_bytes: seq_audit.map(|(_, p)| p),
        kernels: c
            .reports()
            .iter()
            .filter(|r| r.group == "matmul_kernels")
            .map(|r| KernelLine { name: r.name.clone(), median_ns: r.median_ns, min_ns: r.min_ns })
            .collect(),
        kernel_backend: kernels::backend_name(),
        kernel_speedups: c
            .reports()
            .iter()
            .filter(|r| r.group == "matmul_kernels")
            .map(|r| {
                let scalar = find(&format!("scalar_{}", r.name));
                KernelSpeedup {
                    name: r.name.clone(),
                    dispatched_median_ns: r.median_ns,
                    scalar_median_ns: scalar.median_ns,
                    speedup: scalar.median_ns / r.median_ns,
                }
            })
            .collect(),
    };
    println!("kernel backend: {}", line.kernel_backend);
    for s in &line.kernel_speedups {
        println!(
            "  {:<24} dispatched {:>9.0} ns  scalar {:>9.0} ns  speedup {:.2}x",
            s.name, s.dispatched_median_ns, s.scalar_median_ns, s.speedup
        );
    }
    let json = serde_json::to_string(&line).expect("serialize bench line");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_train.json");
    writeln!(f, "{json}").expect("append BENCH_train.json");
    println!("appended results to {path}");
}

fn main() {
    // CI smoke mode: enough sampling to exercise every code path and the
    // JSON plumbing, without paying for statistically stable numbers.
    if std::env::var("GEM_BENCH_QUICK").as_deref() == Ok("1") {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            std::env::set_var("CRITERION_SAMPLES", "2");
        }
        if std::env::var("CRITERION_MAX_SECS").is_err() {
            std::env::set_var("CRITERION_MAX_SECS", "2");
        }
    }
    let mut c = Criterion::default();
    bench_kernels(&mut c);
    let graph = cluster_graph(200);
    let pairs = pairs_per_fit(&graph);
    bench_fit(&mut c);
    let sweep = sweep_threads(&graph);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("thread sweep ({cores} cores):");
    for line in &sweep {
        println!(
            "  threads {:>2}  median {:>12.0} ns  speedup {:.2}x",
            line.threads, line.median_ns, line.speedup
        );
    }
    // Scaling gate: only meaningful when the hardware can actually run
    // 4 workers; on smaller machines the sweep is recorded but not gated.
    if cores >= 4 {
        let s4 = sweep
            .iter()
            .find(|l| l.threads == 4)
            .map(|l| l.speedup)
            .expect("sweep covers 4 threads");
        assert!(s4 >= 1.8, "4-thread fit speedup {s4:.2}x below the 1.8x scaling gate");
    }
    let seq_audit = measure_allocs(&graph, 1);
    let pool_audit = measure_allocs(&graph, 0);
    c.final_summary();
    append_results(&c, pairs, sweep, seq_audit, pool_audit);
}
