//! Observability wiring for the fleet runtime.
//!
//! This module owns the *names*: every metric and trace-event kind the
//! service layer emits is registered here, so the whole exposition
//! surface is reviewable in one file. The naming scheme is
//! `gem_<subsystem>_<noun>_<unit|total>`; labels are drawn from bounded
//! sets only — `shard` (fixed at spawn), `premises` (registered
//! tenants), `verdict`/`outcome` (fixed enums). See DESIGN.md
//! ("Observability architecture") for the cardinality rules.
//!
//! Counters are always maintained (they replace the ad-hoc
//! `AtomicU64`s the fleet already paid for); [`ObsOptions::enabled`]
//! gates only the *extra* cost — latency histograms, span timing and
//! trace-ring pushes — so the overhead of a metrics-off fleet matches
//! the pre-observability runtime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gem_obs::{Counter, Gauge, Histogram, Registry, TraceEvent, TraceRing, TraceSampler};

use crate::monitor::MonitorStats;

/// Observability knobs of a fleet.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// When false, skip histograms, span timing and trace-ring pushes.
    /// Counters (admission, drops, per-premises stats) stay on — they
    /// back the existing accessors.
    pub enabled: bool,
    /// Per-shard trace-ring capacity (events retained; oldest are
    /// overwritten). 0 disables the rings entirely.
    pub ring_capacity: usize,
    /// Register per-premises monitor series (`gem_monitor_*`,
    /// `gem_infer_cache_*`). On by default; turn off for very large
    /// fleets (100k+ tenants) where per-tenant label cardinality would
    /// dominate RSS — shard- and fleet-level series stay on, and
    /// [`crate::Fleet::stats`] still answers per-premises via the
    /// shards.
    pub per_premises: bool,
    /// Head-based request-trace sampling rate in `0..=1`: the fraction
    /// of records whose per-stage span is retained regardless of how
    /// fast they were. 0 (the default) keeps only tail spans.
    pub trace_sample: f64,
    /// Tail-latency retention threshold, milliseconds: any record whose
    /// end-to-end latency reaches this is retained even when the head
    /// coin said no, so the p99 is always explained. ≤ 0 disables tail
    /// capture.
    pub trace_tail_ms: f64,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: true,
            ring_capacity: 512,
            per_premises: true,
            trace_sample: 0.0,
            trace_tail_ms: 250.0,
        }
    }
}

impl ObsOptions {
    /// The sampling policy these options describe ([`TraceSampler::off`]
    /// when observability is disabled — no spans without the rings to
    /// hold them).
    pub fn trace_sampler(&self) -> TraceSampler {
        if !self.enabled || self.ring_capacity == 0 {
            return TraceSampler::off();
        }
        let tail_ns = if self.trace_tail_ms > 0.0 {
            (self.trace_tail_ms * 1e6).min(u64::MAX as f64) as u64
        } else {
            0
        };
        TraceSampler::new(self.trace_sample, tail_ns)
    }
}

/// Admission counters with no shard to attribute to: submissions for
/// premises the fleet does not know. Everything routable is counted on
/// the destination shard's [`ShardAdmissionObs`] instead, so concurrent
/// submitters to different shards never contend on one cache line.
pub(crate) struct AdmissionObs {
    pub(crate) unknown_submitted: Arc<Counter>,
    pub(crate) unknown_sheds: Arc<Counter>,
}

impl AdmissionObs {
    pub(crate) fn register(registry: &Registry) -> AdmissionObs {
        AdmissionObs {
            unknown_submitted: registry
                .counter("gem_fleet_submitted_total", &[("shard", "unknown")]),
            unknown_sheds: registry.counter("gem_fleet_admission_total", &[("verdict", "unknown")]),
        }
    }
}

/// Admission-path counters of one shard. The total over shards (plus
/// the fleet-wide unknown series) reproduces the old fleet-global
/// counters; [`crate::FleetStats`] does that summation lazily.
pub(crate) struct ShardAdmissionObs {
    pub(crate) submitted: Arc<Counter>,
    pub(crate) accepts: Arc<Counter>,
    pub(crate) queued: Arc<Counter>,
    pub(crate) sheds: Arc<Counter>,
}

impl ShardAdmissionObs {
    pub(crate) fn register(registry: &Registry, shard: usize) -> ShardAdmissionObs {
        let s = shard.to_string();
        let verdict = |v| {
            registry.counter("gem_fleet_admission_total", &[("shard", s.as_str()), ("verdict", v)])
        };
        ShardAdmissionObs {
            submitted: registry.counter("gem_fleet_submitted_total", &[("shard", &s)]),
            accepts: verdict("accept"),
            queued: verdict("queued"),
            sheds: verdict("shed"),
        }
    }
}

/// Instruments of the network ingress ([`crate::IngressServer`]).
/// Counters follow the admission naming (`verdict` label) so a scrape
/// can reconcile wire-level accepts against the fleet's own admission
/// series; rejects carry the connection-close reason.
#[derive(Clone)]
pub(crate) struct IngressObs {
    pub(crate) enabled: bool,
    pub(crate) connections: Arc<Counter>,
    pub(crate) connections_open: Arc<Gauge>,
    /// Record frames parsed off the wire (before admission).
    pub(crate) frames: Arc<Counter>,
    pub(crate) accepts: Arc<Counter>,
    pub(crate) queued: Arc<Counter>,
    pub(crate) sheds: Arc<Counter>,
    /// Records refused because another connection owns the premises.
    pub(crate) busy_sheds: Arc<Counter>,
    pub(crate) bytes_rx: Arc<Counter>,
    pub(crate) bytes_tx: Arc<Counter>,
    /// Connection rejects by reason (protocol violations + timeouts).
    pub(crate) rejects_torn: Arc<Counter>,
    pub(crate) rejects_bad_checksum: Arc<Counter>,
    pub(crate) rejects_oversize: Arc<Counter>,
    pub(crate) rejects_bad_frame: Arc<Counter>,
    pub(crate) rejects_timeout: Arc<Counter>,
    pub(crate) rejects_io: Arc<Counter>,
    /// Decisions/alerts whose submitting connection was gone.
    pub(crate) orphan_events: Arc<Counter>,
    /// Frame parse → ACK written, nanoseconds.
    pub(crate) ack_seconds: Arc<Histogram>,
    /// Router dequeue → DECISION/ALERT written, nanoseconds.
    pub(crate) reply_seconds: Arc<Histogram>,
}

impl IngressObs {
    pub(crate) fn register(registry: &Registry, enabled: bool) -> IngressObs {
        let verdict = |v| registry.counter("gem_ingress_records_total", &[("verdict", v)]);
        let reject = |r| registry.counter("gem_ingress_rejects_total", &[("reason", r)]);
        IngressObs {
            enabled,
            connections: registry.counter("gem_ingress_connections_total", &[]),
            connections_open: registry.gauge("gem_ingress_connections_open", &[]),
            frames: registry.counter("gem_ingress_frames_total", &[("kind", "record")]),
            accepts: verdict("accept"),
            queued: verdict("queued"),
            sheds: verdict("shed"),
            busy_sheds: verdict("busy"),
            bytes_rx: registry.counter("gem_ingress_bytes_total", &[("dir", "rx")]),
            bytes_tx: registry.counter("gem_ingress_bytes_total", &[("dir", "tx")]),
            rejects_torn: reject("torn_frame"),
            rejects_bad_checksum: reject("bad_checksum"),
            rejects_oversize: reject("oversize"),
            rejects_bad_frame: reject("bad_frame"),
            rejects_timeout: reject("timeout"),
            rejects_io: reject("io"),
            orphan_events: registry.counter("gem_ingress_orphan_events_total", &[]),
            ack_seconds: registry.histogram("gem_ingress_ack_seconds", &[]),
            reply_seconds: registry.histogram("gem_ingress_reply_seconds", &[]),
        }
    }

    /// The reject counter for a connection-close reason.
    pub(crate) fn reject(&self, reason: &'static str) -> &Counter {
        match reason {
            "torn_frame" => &self.rejects_torn,
            "bad_checksum" => &self.rejects_bad_checksum,
            "oversize" => &self.rejects_oversize,
            "timeout" => &self.rejects_timeout,
            "io" => &self.rejects_io,
            _ => &self.rejects_bad_frame,
        }
    }
}

/// Journal timing/volume instruments of one shard. Attach to a
/// [`crate::journal::JournalWriter`] with `set_obs`.
#[derive(Clone)]
pub struct JournalObs {
    pub(crate) enabled: bool,
    pub(crate) append_seconds: Arc<Histogram>,
    pub(crate) fsync_seconds: Arc<Histogram>,
    pub(crate) retain_seconds: Arc<Histogram>,
    pub(crate) appends: Arc<Counter>,
    pub(crate) bytes: Arc<Counter>,
}

impl JournalObs {
    /// Registers the journal metrics for one shard.
    pub fn register(registry: &Registry, shard: usize, enabled: bool) -> JournalObs {
        let s = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &s)];
        JournalObs {
            enabled,
            append_seconds: registry.histogram("gem_journal_append_seconds", labels),
            fsync_seconds: registry.histogram("gem_journal_fsync_seconds", labels),
            retain_seconds: registry.histogram("gem_journal_retain_seconds", labels),
            appends: registry.counter("gem_journal_appends_total", labels),
            bytes: registry.counter("gem_journal_bytes_total", labels),
        }
    }
}

/// Instruments of one shard worker (all shared handles; cloning is
/// cheap and the fleet keeps a clone for its own thin-read accessors).
#[derive(Clone)]
pub(crate) struct ShardObs {
    pub(crate) enabled: bool,
    pub(crate) epochs: Arc<Counter>,
    pub(crate) epoch_seconds: Arc<Histogram>,
    pub(crate) decision_latency_seconds: Arc<Histogram>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) dropped_events: Arc<Counter>,
    pub(crate) snapshot_seconds: Arc<Histogram>,
    /// Resident (hydrated) premises on this shard right now.
    pub(crate) hot_premises: Arc<Gauge>,
    /// Premises spilled to their snapshot files right now.
    pub(crate) cold_premises: Arc<Gauge>,
    /// Hot-tier evictions (monitor spilled to its snapshot file).
    pub(crate) evictions: Arc<Counter>,
    /// Cold-tier hydrations (snapshot load + journal replay).
    pub(crate) hydrations: Arc<Counter>,
    /// Wall time of one hydration, snapshot read through replay.
    pub(crate) hydrate_seconds: Arc<Histogram>,
    /// Nanoseconds the worker spent deciding/journaling (drain passes).
    pub(crate) busy_ns: Arc<Counter>,
    /// Nanoseconds the worker spent parked waiting for ingress.
    pub(crate) idle_ns: Arc<Counter>,
    pub(crate) journal: JournalObs,
    pub(crate) ring: Arc<TraceRing>,
    /// Scrape-visible mirror of the ring's overwrite-drop count.
    pub(crate) trace_dropped: Arc<Counter>,
    /// Last ring drop count already mirrored into `trace_dropped`.
    trace_dropped_synced: Arc<AtomicU64>,
    /// Span sampling policy (head rate + tail threshold).
    pub(crate) sampler: TraceSampler,
}

impl ShardObs {
    pub(crate) fn register(registry: &Registry, shard: usize, opts: &ObsOptions) -> ShardObs {
        let s = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &s)];
        ShardObs {
            enabled: opts.enabled,
            epochs: registry.counter("gem_shard_epochs_total", labels),
            epoch_seconds: registry.histogram("gem_shard_epoch_seconds", labels),
            decision_latency_seconds: registry
                .histogram("gem_shard_decision_latency_seconds", labels),
            queue_depth: registry.gauge("gem_shard_queue_depth", labels),
            dropped_events: registry.counter("gem_shard_dropped_events_total", labels),
            snapshot_seconds: registry.histogram("gem_shard_snapshot_seconds", labels),
            hot_premises: registry.gauge("gem_shard_hot_premises", labels),
            cold_premises: registry.gauge("gem_shard_cold_premises", labels),
            evictions: registry.counter("gem_shard_evictions_total", labels),
            hydrations: registry.counter("gem_shard_hydrations_total", labels),
            hydrate_seconds: registry.histogram("gem_premises_hydrate_seconds", labels),
            busy_ns: registry.counter("gem_shard_busy_ns_total", labels),
            idle_ns: registry.counter("gem_shard_idle_ns_total", labels),
            journal: JournalObs::register(registry, shard, opts.enabled),
            ring: Arc::new(TraceRing::new(if opts.enabled { opts.ring_capacity } else { 0 })),
            trace_dropped: registry.counter("gem_trace_dropped_total", labels),
            trace_dropped_synced: Arc::new(AtomicU64::new(0)),
            sampler: opts.trace_sampler(),
        }
    }

    /// Pushes a trace event when tracing is on, mirroring any
    /// overwrite-drops the ring just performed into the scrape-visible
    /// counter.
    pub(crate) fn trace(&self, event: TraceEvent) {
        if self.enabled {
            self.ring.push(event);
            self.sync_trace_dropped();
        }
    }

    /// Mirrors `ring.dropped()` into `gem_trace_dropped_total`. Uses a
    /// `fetch_max` high-water mark so concurrent pushers (the shard
    /// worker and the ingress router share the ring) never double-count
    /// a drop.
    pub(crate) fn sync_trace_dropped(&self) {
        let dropped = self.ring.dropped();
        let seen = self.trace_dropped_synced.fetch_max(dropped, Ordering::Relaxed);
        if dropped > seen {
            self.trace_dropped.add(dropped - seen);
        }
    }
}

/// Per-premises monitor instruments. The fleet attaches one of these to
/// every [`crate::Monitor`] it owns; counters are seeded from the
/// monitor's restored statistics so recovery does not zero the series.
#[derive(Clone)]
pub struct MonitorObs {
    pub(crate) enabled: bool,
    pub(crate) premises_id: u64,
    pub(crate) decisions_in: Arc<Counter>,
    pub(crate) decisions_out: Arc<Counter>,
    pub(crate) alerts: Arc<Counter>,
    pub(crate) self_updates: Arc<Counter>,
    pub(crate) epochs: Arc<Counter>,
    pub(crate) cache_hits: Arc<Counter>,
    pub(crate) cache_misses: Arc<Counter>,
    pub(crate) cache_invalidations: Arc<Counter>,
    pub(crate) ring: Arc<TraceRing>,
}

impl MonitorObs {
    /// Registers the per-premises series. `ring` is the trace ring of
    /// the shard the premises routes to.
    pub fn register(
        registry: &Registry,
        premises_id: u64,
        ring: Arc<TraceRing>,
        enabled: bool,
    ) -> MonitorObs {
        let p = premises_id.to_string();
        let labels: &[(&str, &str)] = &[("premises", &p)];
        let outcome = |name: &str, o: &str| {
            registry.counter(name, &[("premises", p.as_str()), ("outcome", o)])
        };
        MonitorObs {
            enabled,
            premises_id,
            decisions_in: outcome("gem_monitor_decisions_total", "in"),
            decisions_out: outcome("gem_monitor_decisions_total", "out"),
            alerts: registry.counter("gem_monitor_alerts_total", labels),
            self_updates: registry.counter("gem_monitor_self_updates_total", labels),
            epochs: registry.counter("gem_monitor_epochs_total", labels),
            cache_hits: outcome("gem_infer_cache_events_total", "hit"),
            cache_misses: outcome("gem_infer_cache_events_total", "miss"),
            cache_invalidations: outcome("gem_infer_cache_events_total", "invalidation"),
            ring,
        }
    }

    /// Seeds the counters with pre-existing session statistics (the
    /// recovery path: the registry is fresh but the monitor is not).
    pub(crate) fn seed(&self, stats: &MonitorStats, cache: gem_core::CacheStats) {
        self.decisions_in.add(stats.in_decisions as u64);
        self.decisions_out.add(stats.out_decisions as u64);
        self.alerts.add(stats.alerts as u64);
        self.self_updates.add(stats.model_updates as u64);
        self.epochs.add(stats.epochs);
        self.cache_hits.add(cache.hits);
        self.cache_misses.add(cache.misses);
        self.cache_invalidations.add(cache.invalidations);
    }

    /// Assembles a [`MonitorStats`] purely from the registry atomics —
    /// no shard round-trip, no engine access. `sheds` is supplied by
    /// the admission side, which owns that count.
    pub(crate) fn stats_snapshot(&self, sheds: u64) -> MonitorStats {
        let in_decisions = self.decisions_in.get() as usize;
        let out_decisions = self.decisions_out.get() as usize;
        MonitorStats {
            scans: in_decisions + out_decisions,
            in_decisions,
            out_decisions,
            alerts: self.alerts.get() as usize,
            model_updates: self.self_updates.get() as usize,
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            epochs: self.epochs.get(),
            sheds,
        }
    }

    /// Pushes a trace event when tracing is on.
    pub(crate) fn trace(&self, event: TraceEvent) {
        if self.enabled {
            self.ring.push(event);
        }
    }
}

/// Point-in-time admission/ingress statistics of one shard.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events this shard dropped because the fleet event channel was
    /// full (satellite: attributable per shard, not just fleet-global).
    pub dropped_events: u64,
    /// Current ingress occupancy (admitted, not yet decided).
    pub queue_depth: usize,
    /// Scans submitted to this shard (accepted or not).
    pub submitted: u64,
    /// Nanoseconds the shard worker spent deciding/journaling. Zero
    /// unless observability timing is enabled.
    pub busy_ns: u64,
    /// Nanoseconds the shard worker spent parked waiting for ingress.
    /// Zero unless observability timing is enabled.
    pub idle_ns: u64,
    /// Resident (hydrated) premises on this shard.
    pub hot_premises: i64,
    /// Premises spilled to their snapshot files.
    pub cold_premises: i64,
    /// Hot-tier evictions since spawn.
    pub evictions: u64,
    /// Cold-tier hydrations since spawn.
    pub hydrations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_obs(ring_capacity: usize) -> (Registry, ShardObs) {
        let registry = Registry::new();
        let opts = ObsOptions { ring_capacity, ..ObsOptions::default() };
        let obs = ShardObs::register(&registry, 0, &opts);
        (registry, obs)
    }

    /// Overfilling a trace ring must surface every overwrite-drop in
    /// `gem_trace_dropped_total{shard}`, exactly once.
    #[test]
    fn trace_drop_counter_mirrors_ring_overflow() {
        let (_registry, obs) = shard_obs(4);
        for i in 0..10u64 {
            obs.trace(TraceEvent::new("span").with("i", i));
        }
        assert_eq!(obs.ring.dropped(), 6, "10 pushes into capacity 4 drop 6");
        assert_eq!(obs.trace_dropped.get(), 6, "counter mirrors the ring's drops");
        // Re-syncing without new drops must not double-count.
        obs.sync_trace_dropped();
        obs.sync_trace_dropped();
        assert_eq!(obs.trace_dropped.get(), 6);
        // Draining resets nothing: drops are cumulative.
        let drained = obs.ring.drain();
        assert_eq!(drained.len(), 4);
        obs.trace(TraceEvent::new("span"));
        assert_eq!(obs.trace_dropped.get(), 6, "push into a drained ring drops nothing");
    }

    /// The counter is visible through the registry's exposition under
    /// the canonical name, labelled with the shard.
    #[test]
    fn trace_drop_counter_is_registered_per_shard() {
        let (registry, obs) = shard_obs(2);
        for _ in 0..5 {
            obs.trace(TraceEvent::new("span"));
        }
        let text = registry.render_prometheus();
        assert!(
            text.contains("gem_trace_dropped_total{shard=\"0\"} 3"),
            "exposition must carry the mirrored drop count:\n{text}"
        );
    }

    /// With observability disabled the ring never sees events, so the
    /// drop counter stays flat no matter how much is pushed.
    #[test]
    fn disabled_obs_never_counts_trace_drops() {
        let registry = Registry::new();
        let opts = ObsOptions { enabled: false, ring_capacity: 2, ..ObsOptions::default() };
        let obs = ShardObs::register(&registry, 1, &opts);
        for _ in 0..8 {
            obs.trace(TraceEvent::new("span"));
        }
        assert_eq!(obs.ring.len(), 0);
        assert_eq!(obs.trace_dropped.get(), 0);
    }
}

/// Fleet-wide admission statistics, readable without any shard
/// round-trip. The hot submit path only touches per-shard counters;
/// the fleet totals here are summed lazily at read time.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FleetStats {
    /// Scans submitted (accepted or not).
    pub submitted: u64,
    /// Scans admitted with an idle queue.
    pub accepts: u64,
    /// Scans admitted behind a backlog.
    pub queued: u64,
    /// Scans shed at admission (queue/quota/shutdown).
    pub sheds: u64,
    /// Scans shed because the premises is not registered.
    pub unknown_sheds: u64,
    /// Events dropped across all shards (sum of the per-shard counts).
    pub dropped_events: u64,
    /// Periodic-snapshot failures (satellite of the timer: failures are
    /// counted and traced, never silently discarded).
    pub snapshot_errors: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}
