//! Sharded multi-tenant runtime: N worker shards, each owning the
//! [`Monitor`]s of the premises routed to it.
//!
//! * **Routing** — rendezvous (highest-random-weight) hashing of
//!   `premises_id` onto shards: stable under shard-count changes for
//!   most tenants and needs no coordination state.
//! * **Backpressure** — admission is bounded per shard *and* per
//!   premises; a full queue sheds ([`Admission::Shed`]) instead of
//!   blocking the ingest thread, and the per-premises quota keeps one
//!   chatty tenant from squeezing out the rest.
//! * **Events** — shards publish decisions on a bounded channel sized
//!   for one full ingress backlog and never block on it: a consumer that
//!   falls further behind loses notifications (counted by
//!   [`Fleet::dropped_events`]) instead of wedging the shards.
//! * **Durability** — a durable fleet writes a base snapshot + manifest
//!   at spawn, so the write-ahead journal is replayable from the very
//!   first epoch. [`Fleet::snapshot`] is *incremental and pause-free*:
//!   each shard, between its own drain passes, writes fresh files only
//!   for premises dirty since their last stored image (and
//!   group-commit-syncs any spill files), then the fleet commits a
//!   checksummed [`FleetManifest`] via atomic rename, prunes the
//!   journals up to the committed watermarks and sweeps superseded
//!   snapshot files. Decisions keep flowing while a snapshot round runs.
//!   A crashed fleet is rebuilt with [`Fleet::recover`], which replays
//!   the journaled epochs past each premises' manifest watermark and
//!   reproduces the uninterrupted decision stream bit for bit.
//! * **Tiered residency** — with
//!   [`FleetConfig::hot_premises_per_shard`] (env override
//!   `GEM_FLEET_HOT_CAP`), each shard keeps only an LRU hot tier of
//!   models resident; idle premises spill to their snapshot files and
//!   hydrate bitwise on their next record. RSS then tracks the hot
//!   tier, not the tenant count.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use gem_core::{FleetManifest, GemSnapshot, PersistError, PremisesEntry};
use gem_obs::{Counter, Registry, SpanContext, SpanIdGen, TraceEvent, TraceRing};
use gem_signal::SignalRecord;

use crate::journal::read_all_journals;
use crate::monitor::{Monitor, MonitorState, MonitorStats};
use crate::obs::{
    AdmissionObs, FleetStats, MonitorObs, ObsOptions, ShardAdmissionObs, ShardObs, ShardStats,
};
use crate::shard::{FleetEvent, PremisesSeed, RecordMeta, ShardMsg, ShardWorker, Stored};
use crate::supervisor::{Admission, ShedReason};
use crate::wire::WireTrace;

/// Fleet sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker shards (dedicated threads). At least 1.
    pub shards: usize,
    /// Ingress bound per shard: records admitted but not yet decided.
    pub queue_per_shard: usize,
    /// Coalescing cap: at most this many records per premises fold into
    /// one decision epoch per drain pass (fairness across tenants).
    pub max_batch: usize,
    /// Durability directory. `None` runs ephemeral (no journal, no
    /// snapshots).
    pub dir: Option<PathBuf>,
    /// Auto-snapshot period. `None` snapshots only on `shutdown`.
    pub snapshot_interval: Option<Duration>,
    /// Hot-tier cap per shard: at most this many premises keep their
    /// model resident; the least-recently-decided idle ones spill to
    /// their snapshot files and hydrate back on their next record.
    /// `None` keeps everything resident. Requires a durability `dir`
    /// (there is nowhere to spill otherwise); the env var
    /// `GEM_FLEET_HOT_CAP` overrides it (`0` = unlimited).
    pub hot_premises_per_shard: Option<usize>,
    /// Observability knobs (see [`ObsOptions`]). Counters are always
    /// on; `enabled: false` skips histograms and trace rings.
    pub obs: ObsOptions,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            queue_per_shard: 256,
            max_batch: 32,
            dir: None,
            snapshot_interval: None,
            hot_premises_per_shard: None,
            obs: ObsOptions::default(),
        }
    }
}

/// Errors from fleet durability and recovery.
#[derive(Debug)]
pub enum FleetError {
    /// Snapshot/manifest/journal persistence failed.
    Persist(PersistError),
    /// A shard worker failed or disappeared.
    Shard(String),
    /// The durability directory is inconsistent (bad sidecar, epoch gap).
    Corrupt(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Persist(e) => write!(f, "fleet persistence error: {e}"),
            FleetError::Shard(e) => write!(f, "fleet shard error: {e}"),
            FleetError::Corrupt(e) => write!(f, "fleet durability state corrupt: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<PersistError> for FleetError {
    fn from(e: PersistError) -> Self {
        FleetError::Persist(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Persist(PersistError::Io(e))
    }
}

/// Admission-side state for one premises.
struct Gate {
    shard: usize,
    /// Records admitted but not yet decided, for the per-premises quota.
    inflight: Arc<AtomicUsize>,
    /// Scans shed at admission.
    sheds: AtomicU64,
}

/// Admission-side view of one shard. Everything on the submit path is
/// a plain atomic or a lock-free channel send — no lock anywhere, so
/// concurrent submitters to different shards share nothing but
/// read-only routing state.
struct IngressShard {
    /// The shard's ingress channel. Kept alive for the fleet's whole
    /// life; shutdown is signalled by `closed`, not by dropping it.
    tx: Sender<ShardMsg>,
    /// Raised at shutdown *before* the `Close` message is sent. The
    /// submit path reserves `depth` first and checks this second, so
    /// `depth` doubles as an in-flight-submitter refcount the closing
    /// worker can wait out: any submitter that saw `closed == false`
    /// already has its reservation visible (both accesses are SeqCst).
    closed: AtomicBool,
    /// Ingress occupancy, shared with the shard worker.
    depth: Arc<AtomicUsize>,
}

/// Everything the admission path needs, shared between the [`Fleet`]
/// and its [`FleetSubmitter`] handles. `Sync`: submit from any thread.
struct Ingress {
    gates: HashMap<u64, Gate>,
    shards: Vec<IngressShard>,
    queue_per_shard: usize,
    /// Per-premises quota derived from the shard queue bound.
    quota: usize,
    /// Fleet-wide counters for submissions with no shard (unknown
    /// premises). Routable traffic is counted per shard.
    admission: AdmissionObs,
    /// Per-shard admission counters: the hot path touches only the
    /// destination shard's set, so submitters to different shards never
    /// contend on one cache line. [`Fleet::fleet_stats`] sums lazily.
    shard_admission: Vec<ShardAdmissionObs>,
    /// Per-shard trace rings (shed verdicts are traced; accepts are
    /// only counted — tracing every accept would melt the ring mutex).
    shard_obs: Vec<ShardObs>,
    /// Trace/span id source for server-minted request contexts.
    span_ids: SpanIdGen,
}

impl Ingress {
    /// The admission decision (see [`Fleet::submit`] for the contract).
    fn submit(&self, premises_id: u64, record: SignalRecord) -> Admission {
        self.submit_traced(premises_id, record, Instant::now(), None)
    }

    /// Like [`Ingress::submit`], but with an explicit request origin
    /// (when the caller started handling the record — e.g. frame parse
    /// time on the TCP ingress) and an optional client-minted trace
    /// context to adopt instead of minting one.
    fn submit_traced(
        &self,
        premises_id: u64,
        record: SignalRecord,
        origin: Instant,
        wire: Option<WireTrace>,
    ) -> Admission {
        let Some(gate) = self.gates.get(&premises_id) else {
            self.admission.unknown_submitted.inc();
            self.admission.unknown_sheds.inc();
            return Admission::Shed(ShedReason::UnknownPremises);
        };
        let shard = &self.shards[gate.shard];
        self.shard_admission[gate.shard].submitted.inc();
        // Optimistically reserve, back out on overflow: cheap, and the
        // occasional transient over-count only sheds one scan early.
        // SeqCst pairs with the shutdown protocol: reserve *before*
        // checking `closed`, so a closing worker that still reads
        // `depth > 0` knows a submitter may be mid-flight and waits.
        let depth = shard.depth.fetch_add(1, Ordering::SeqCst) + 1;
        if shard.closed.load(Ordering::SeqCst) {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            self.shed(gate.shard, premises_id, "shutdown");
            return Admission::Shed(ShedReason::Shutdown);
        }
        if depth > self.queue_per_shard {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            gate.sheds.fetch_add(1, Ordering::Relaxed);
            self.shed(gate.shard, premises_id, "queue_full");
            return Admission::Shed(ShedReason::QueueFull);
        }
        let inflight = gate.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if inflight > self.quota {
            gate.inflight.fetch_sub(1, Ordering::AcqRel);
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            gate.sheds.fetch_add(1, Ordering::Relaxed);
            self.shed(gate.shard, premises_id, "quota");
            return Admission::Shed(ShedReason::QueueFull);
        }
        // Trace identity: adopt a client-minted context when one rode
        // in on the wire, mint otherwise. Skipped entirely (id 0) when
        // the sampler can never retain a span, so tracing-off submits
        // pay nothing.
        let sampler = &self.shard_obs[gate.shard].sampler;
        let ctx = if sampler.is_off() {
            SpanContext { trace_id: 0, parent_span: 0, sampled: false }
        } else {
            match wire {
                Some(w) if w.trace_id != 0 => sampler.adopt(w.trace_id, w.parent_span),
                _ => sampler.mint(&self.span_ids),
            }
        };
        let meta = RecordMeta {
            ctx,
            ingress_ns: if ctx.trace_id == 0 {
                0
            } else {
                origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
            },
            enqueued: Instant::now(),
        };
        let sent = shard.tx.send(ShardMsg::Record { premises_id, record, meta });
        match sent {
            Ok(()) => {
                let admission = Admission::from_depth(depth);
                match admission {
                    Admission::Accept => self.shard_admission[gate.shard].accepts.inc(),
                    _ => self.shard_admission[gate.shard].queued.inc(),
                }
                admission
            }
            // The worker is gone (aborted); the channel outlives it only
            // on the fleet side.
            Err(_) => {
                gate.inflight.fetch_sub(1, Ordering::AcqRel);
                shard.depth.fetch_sub(1, Ordering::SeqCst);
                self.shed(gate.shard, premises_id, "shutdown");
                Admission::Shed(ShedReason::Shutdown)
            }
        }
    }

    fn shed(&self, shard: usize, premises_id: u64, reason: &'static str) {
        self.shard_admission[shard].sheds.inc();
        self.shard_obs[shard].trace(
            TraceEvent::new("admission")
                .with("premises", premises_id)
                .with("verdict", "shed")
                .with("reason", reason),
        );
    }

    /// Pushes a trace event onto the ring of the shard owning
    /// `premises_id` (events for unknown premises are dropped).
    fn trace_event(&self, premises_id: u64, event: TraceEvent) {
        if let Some(gate) = self.gates.get(&premises_id) {
            self.shard_obs[gate.shard].trace(event);
        }
    }
}

/// A cloneable, thread-safe admission handle to a running [`Fleet`]
/// (the fleet itself is not `Sync` — it owns the event receiver).
/// Submitting through a handle is exactly [`Fleet::submit`]; once the
/// fleet shuts down, handles observe `Shed(Shutdown)`.
#[derive(Clone)]
pub struct FleetSubmitter {
    ingress: Arc<Ingress>,
}

impl FleetSubmitter {
    /// Submits a scan for a premises. Never blocks.
    pub fn submit(&self, premises_id: u64, record: SignalRecord) -> Admission {
        self.ingress.submit(premises_id, record)
    }

    /// Submits a scan with an explicit request origin (when the caller
    /// started handling it) and an optional client-minted trace context
    /// to adopt. The TCP ingress uses this so a span's `ingress_ns`
    /// covers frame parse → shard enqueue, not just the submit call.
    pub fn submit_traced(
        &self,
        premises_id: u64,
        record: SignalRecord,
        origin: Instant,
        trace: Option<WireTrace>,
    ) -> Admission {
        self.ingress.submit_traced(premises_id, record, origin, trace)
    }

    /// Pushes a structured trace event onto the ring of the shard that
    /// owns `premises_id` (dropped for unknown premises). External
    /// stages of a record's journey — e.g. the ingress router writing
    /// the DECISION reply — attach their span events to the same ring
    /// the shard's own span landed on.
    pub fn trace(&self, premises_id: u64, event: TraceEvent) {
        self.ingress.trace_event(premises_id, event);
    }
}

/// The result of [`Fleet::recover`].
pub struct Recovery {
    /// The rebuilt, running fleet.
    pub fleet: Fleet,
    /// Events regenerated by replaying journaled epochs — bitwise equal
    /// to what the crashed fleet emitted for those epochs.
    pub replayed: Vec<FleetEvent>,
    /// Number of journal epochs replayed.
    pub replayed_epochs: u64,
}

/// What a shard worker thread returns on join: the monitors it owned.
type ShardYield = Vec<(u64, Monitor)>;

/// A running multi-tenant fleet. See the module docs for the design.
pub struct Fleet {
    /// Admission state, shared with every [`FleetSubmitter`].
    ingress: Arc<Ingress>,
    workers: Vec<Option<JoinHandle<ShardYield>>>,
    /// Per-premises registry handles, for round-trip-free stats.
    monitor_obs: HashMap<u64, MonitorObs>,
    registry: Arc<Registry>,
    event_rx: Receiver<FleetEvent>,
    /// Periodic-snapshot failures (also surfaced in [`FleetStats`]).
    snapshot_errors: Arc<Counter>,
    cfg: FleetConfig,
    /// Serializes snapshot sequences: [`Fleet::snapshot`] and the
    /// periodic timer must never interleave their pause → commit →
    /// truncate windows.
    snapshot_lock: Arc<Mutex<()>>,
    snapshot_timer: Option<(Sender<()>, JoinHandle<()>)>,
}

/// Rendezvous (highest-random-weight) shard choice: hash every
/// `(premises, shard)` pair and pick the shard with the highest score.
/// Adding or removing a shard only moves the premises whose maximum
/// changed — no remap table to persist.
pub fn shard_for(premises_id: u64, shards: usize) -> usize {
    assert!(shards >= 1);
    (0..shards)
        .max_by_key(|&s| {
            // splitmix64 finalizer over the pair; plenty of avalanche
            // for a routing decision.
            let mut x = premises_id ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        })
        .expect("at least one shard")
}

impl Fleet {
    /// Spawns the shard workers around the given premises monitors.
    /// Premises ids must be unique.
    pub fn spawn(premises: Vec<(u64, Monitor)>, cfg: FleetConfig) -> Result<Fleet, FleetError> {
        Self::spawn_at(
            premises
                .into_iter()
                .map(|(p, m)| {
                    (p, PremisesSeed::Hot { monitor: Box::new(m), epoch: 0, stored: None })
                })
                .collect(),
            cfg,
        )
    }

    /// Like [`Fleet::spawn`] but seeding each premises either hot
    /// (resident monitor) or cold (spilled to its snapshot file) — the
    /// recovery path spawns clean premises cold so startup cost tracks
    /// the journal backlog, not the tenant count.
    fn spawn_at(premises: Vec<(u64, PremisesSeed)>, cfg: FleetConfig) -> Result<Fleet, FleetError> {
        assert!(cfg.shards >= 1, "a fleet needs at least one shard");
        assert!(cfg.max_batch >= 1, "decision epochs need at least one record");
        if let Some(dir) = &cfg.dir {
            std::fs::create_dir_all(dir)?;
        }
        // Hot-tier cap: env override first, config second; 0 disables.
        let hot_cap = match std::env::var("GEM_FLEET_HOT_CAP") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => cfg.hot_premises_per_shard,
            },
            Err(_) => cfg.hot_premises_per_shard,
        };
        // Sized for a full backlog: each admitted record yields at most
        // one decision plus one alert transition, so a consumer that
        // drains at least once per `queue_per_shard` admissions never
        // loses an event. Shards never block on this channel; overflow
        // is dropped and counted (`dropped_events`).
        let (event_tx, event_rx) = bounded(2 * cfg.shards * cfg.queue_per_shard + 64);
        let registry = Arc::new(Registry::new());
        let admission = AdmissionObs::register(&registry);
        let shard_admission: Vec<ShardAdmissionObs> =
            (0..cfg.shards).map(|id| ShardAdmissionObs::register(&registry, id)).collect();
        let shard_obs: Vec<ShardObs> =
            (0..cfg.shards).map(|id| ShardObs::register(&registry, id, &cfg.obs)).collect();
        let snapshot_errors = registry.counter("gem_fleet_snapshot_errors_total", &[]);
        let mut by_shard: Vec<Vec<(u64, PremisesSeed)>> =
            (0..cfg.shards).map(|_| Vec::new()).collect();
        let mut gates = HashMap::with_capacity(premises.len());
        for (premises_id, seed) in premises {
            let shard = shard_for(premises_id, cfg.shards);
            by_shard[shard].push((premises_id, seed));
            let gate =
                Gate { shard, inflight: Arc::new(AtomicUsize::new(0)), sheds: AtomicU64::new(0) };
            if gates.insert(premises_id, gate).is_some() {
                panic!("duplicate premises id {premises_id}");
            }
        }
        // Per-premises quota: an even split of the shard queue across
        // the premises of the busiest shard, but never below 1.
        let max_on_shard = by_shard.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let quota = (cfg.queue_per_shard / max_on_shard).max(1);
        let mut monitor_obs = HashMap::with_capacity(gates.len());
        let mut ingress_shards = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for (id, mut seeds) in by_shard.into_iter().enumerate() {
            let (tx, rx) = bounded(cfg.queue_per_shard * 2 + 64);
            let depth = Arc::new(AtomicUsize::new(0));
            let inflight: HashMap<u64, Arc<AtomicUsize>> =
                seeds.iter().map(|(p, _)| (*p, Arc::clone(&gates[p].inflight))).collect();
            let mut shard_monitor_obs = HashMap::new();
            if cfg.obs.per_premises {
                for (p, seed) in &mut seeds {
                    let obs = MonitorObs::register(
                        &registry,
                        *p,
                        Arc::clone(&shard_obs[id].ring),
                        cfg.obs.enabled,
                    );
                    // Hot monitors seed the registry series from their
                    // session stats; cold premises seed from the stored
                    // sidecar (hydration later re-attaches without
                    // seeding — the series keep running while cold).
                    match seed {
                        PremisesSeed::Hot { monitor, .. } => monitor.set_obs(obs.clone()),
                        PremisesSeed::Cold { stored, .. } => {
                            obs.seed(&stored.state.stats, gem_core::CacheStats::default())
                        }
                    }
                    shard_monitor_obs.insert(*p, obs.clone());
                    monitor_obs.insert(*p, obs);
                }
            }
            let worker = ShardWorker::new(
                id,
                rx,
                event_tx.clone(),
                seeds,
                cfg.max_batch,
                cfg.dir.as_ref(),
                hot_cap,
                Arc::clone(&depth),
                inflight,
                shard_obs[id].clone(),
                shard_monitor_obs,
            )?;
            let handle = thread::Builder::new()
                .name(format!("gem-shard-{id}"))
                .spawn(move || worker.run())
                .map_err(|e| FleetError::Shard(e.to_string()))?;
            ingress_shards.push(IngressShard { tx, closed: AtomicBool::new(false), depth });
            workers.push(Some(handle));
        }
        let ingress = Arc::new(Ingress {
            gates,
            shards: ingress_shards,
            queue_per_shard: cfg.queue_per_shard,
            quota,
            admission,
            shard_admission,
            shard_obs,
            span_ids: SpanIdGen::new(),
        });
        let mut fleet = Fleet {
            ingress,
            workers,
            monitor_obs,
            registry,
            event_rx,
            snapshot_errors,
            cfg,
            snapshot_lock: Arc::new(Mutex::new(())),
            snapshot_timer: None,
        };
        // A durable fleet must be recoverable from its very first epoch:
        // without a base manifest the journal has nothing to replay
        // against, so a crash before the first periodic (or shutdown)
        // snapshot would lose everything. Write the initial snapshot +
        // manifest before any record is accepted. Recovery re-enters
        // here with the manifest already present and skips this.
        let needs_initial_manifest =
            fleet.cfg.dir.as_ref().is_some_and(|d| !d.join(gem_core::MANIFEST_FILE).exists());
        if needs_initial_manifest {
            fleet.snapshot()?;
        }
        fleet.start_snapshot_timer();
        Ok(fleet)
    }

    /// Periodic snapshots, when configured with a directory + interval.
    fn start_snapshot_timer(&mut self) {
        let (Some(dir), Some(interval)) = (self.cfg.dir.clone(), self.cfg.snapshot_interval) else {
            return;
        };
        let txs: Vec<Sender<ShardMsg>> = self.ingress.shards.iter().map(|s| s.tx.clone()).collect();
        let lock = Arc::clone(&self.snapshot_lock);
        let errors = Arc::clone(&self.snapshot_errors);
        let trace_obs = self.ingress.shard_obs[0].clone();
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handle = thread::Builder::new()
            .name("gem-fleet-snapshots".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    // Timer stopped (or fleet gone): exit.
                    Ok(()) => return,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        // A failed periodic snapshot leaves the previous
                        // manifest + journal intact — recoverable, so
                        // not fatal — but never silent: counted
                        // (`gem_fleet_snapshot_errors_total`, surfaced
                        // in `FleetStats`) and traced on shard 0's ring.
                        // The lock keeps this window from interleaving
                        // with a user-initiated `Fleet::snapshot`.
                        let guard = lock.lock().unwrap_or_else(|p| p.into_inner());
                        if let Err(e) = snapshot_all(&txs, &dir) {
                            errors.inc();
                            trace_obs.trace(
                                TraceEvent::new("snapshot_error").with("error", e.to_string()),
                            );
                        }
                        drop(guard);
                    }
                }
            })
            .expect("spawn snapshot timer");
        self.snapshot_timer = Some((stop_tx, handle));
    }

    /// Submits a scan for a premises. Never blocks: a full shard queue or
    /// an exhausted per-premises quota sheds the scan.
    pub fn submit(&self, premises_id: u64, record: SignalRecord) -> Admission {
        self.ingress.submit(premises_id, record)
    }

    /// A cloneable, thread-safe admission handle: submit from any
    /// thread without borrowing the fleet. After shutdown, handles
    /// observe `Shed(Shutdown)`.
    pub fn submitter(&self) -> FleetSubmitter {
        FleetSubmitter { ingress: Arc::clone(&self.ingress) }
    }

    /// The metrics registry backing this fleet. Serve it over HTTP with
    /// [`gem_obs::MetricsServer`], or render it directly
    /// (`render_prometheus` / `render_json`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The merged event stream of all shards. Events of one premises
    /// arrive in decision order; interleaving across premises is
    /// unspecified.
    ///
    /// Shards never block on this channel. It is sized for one full
    /// ingress backlog (`2 * shards * queue_per_shard + 64`), so a
    /// consumer that drains at least once per `queue_per_shard`
    /// admissions sees every event; fall further behind and the excess
    /// is dropped — model updates and the journal are unaffected — and
    /// counted in [`Fleet::dropped_events`].
    pub fn events(&self) -> &Receiver<FleetEvent> {
        &self.event_rx
    }

    /// Detaches the event receiver for an external consumer (the
    /// network ingress routes decisions back to device connections
    /// from its own thread). Afterwards [`Fleet::events`] observes a
    /// disconnected channel; there is only ever one event stream.
    pub fn take_events(&mut self) -> Receiver<FleetEvent> {
        let (_, dead_rx) = bounded::<FleetEvent>(1);
        std::mem::replace(&mut self.event_rx, dead_rx)
    }

    /// The per-premises admission quota: records admitted but not yet
    /// decided, above which a single premises is shed. Wire-level flow
    /// control derives its credit window from this — a client holding
    /// at most this many unresolved records can never be shed.
    pub fn admission_quota(&self) -> usize {
        self.ingress.quota
    }

    /// The observability options this fleet was spawned with.
    pub fn obs_options(&self) -> &ObsOptions {
        &self.cfg.obs
    }

    /// Events dropped because the consumer let the event channel fill
    /// (see [`Fleet::events`]). Decisions themselves are never lost —
    /// the models updated and the epochs were journaled — only their
    /// notifications. The count is attributed per shard
    /// (`gem_shard_dropped_events_total{shard}`); this sums them.
    pub fn dropped_events(&self) -> u64 {
        self.ingress.shard_obs.iter().map(|s| s.dropped_events.get()).sum()
    }

    /// Fleet-wide admission statistics with a per-shard breakdown.
    /// Every field is an atomic load — no locks, no shard round-trip,
    /// safe to poll from a hot path. The hot submit path maintains only
    /// per-shard counters; the fleet totals are summed here, lazily, so
    /// reads pay for aggregation instead of every submit paying for
    /// shared cache lines.
    pub fn fleet_stats(&self) -> FleetStats {
        let a = &self.ingress.admission;
        let shards: Vec<ShardStats> = self
            .ingress
            .shards
            .iter()
            .zip(self.ingress.shard_obs.iter().zip(&self.ingress.shard_admission))
            .enumerate()
            .map(|(i, (s, (obs, adm)))| ShardStats {
                shard: i,
                dropped_events: obs.dropped_events.get(),
                queue_depth: s.depth.load(Ordering::Relaxed),
                submitted: adm.submitted.get(),
                busy_ns: obs.busy_ns.get(),
                idle_ns: obs.idle_ns.get(),
                hot_premises: obs.hot_premises.get(),
                cold_premises: obs.cold_premises.get(),
                evictions: obs.evictions.get(),
                hydrations: obs.hydrations.get(),
            })
            .collect();
        let adm = &self.ingress.shard_admission;
        FleetStats {
            submitted: a.unknown_submitted.get()
                + adm.iter().map(|s| s.submitted.get()).sum::<u64>(),
            accepts: adm.iter().map(|s| s.accepts.get()).sum(),
            queued: adm.iter().map(|s| s.queued.get()).sum(),
            sheds: adm.iter().map(|s| s.sheds.get()).sum(),
            unknown_sheds: a.unknown_sheds.get(),
            dropped_events: shards.iter().map(|s| s.dropped_events).sum(),
            snapshot_errors: self.snapshot_errors.get(),
            shards,
        }
    }

    /// Stops epoch processing on every shard (records keep queueing, up
    /// to the admission bounds). With [`Fleet::flush`] this gives tests
    /// and benchmarks deterministic epoch boundaries.
    pub fn pause(&self) {
        self.broadcast(|| ShardMsg::Pause);
    }

    /// Resumes epoch processing.
    pub fn resume(&self) {
        self.broadcast(|| ShardMsg::Resume);
    }

    /// Drains every pending record into decision epochs (even while
    /// paused) and waits until all shards are done.
    pub fn flush(&self) -> Result<(), FleetError> {
        let mut acks = Vec::with_capacity(self.ingress.shards.len());
        for shard in &self.ingress.shards {
            let (ack_tx, ack_rx) = bounded(1);
            shard
                .tx
                .send(ShardMsg::Flush { ack: ack_tx })
                .map_err(|_| FleetError::Shard("shard gone during flush".into()))?;
            acks.push(ack_rx);
        }
        for ack in acks {
            ack.recv().map_err(|_| FleetError::Shard("shard died during flush".into()))?;
        }
        Ok(())
    }

    /// Takes an incremental durable snapshot without pausing anything:
    /// each shard writes fresh files only for premises dirty since
    /// their last stored image (between its own drain passes), the
    /// manifest commits atomically, and the journals are pruned up to
    /// the committed watermarks. Records admitted while the round runs
    /// keep deciding; their epochs journal past the captured watermarks
    /// and survive the pruning. Requires a durability directory.
    pub fn snapshot(&self) -> Result<(), FleetError> {
        let dir =
            self.cfg.dir.as_ref().ok_or_else(|| {
                FleetError::Shard("snapshot requires a durability directory".into())
            })?;
        let txs: Vec<Sender<ShardMsg>> = self.ingress.shards.iter().map(|s| s.tx.clone()).collect();
        let _guard = self.snapshot_lock.lock().unwrap_or_else(|p| p.into_inner());
        snapshot_all(&txs, dir)
    }

    /// Per-premises statistics (sorted by premises id), with
    /// admission-side shed counts folded in. This round-trips through
    /// every shard; for a lock-free read see [`Fleet::stats_snapshot`].
    pub fn stats(&self) -> Result<Vec<(u64, MonitorStats)>, FleetError> {
        let mut acks = Vec::with_capacity(self.ingress.shards.len());
        for shard in &self.ingress.shards {
            let (ack_tx, ack_rx) = bounded(1);
            shard
                .tx
                .send(ShardMsg::Stats { ack: ack_tx })
                .map_err(|_| FleetError::Shard("shard gone during stats".into()))?;
            acks.push(ack_rx);
        }
        let mut all = Vec::new();
        for ack in acks {
            let stats =
                ack.recv().map_err(|_| FleetError::Shard("shard died during stats".into()))?;
            all.extend(stats);
        }
        for (premises_id, stats) in &mut all {
            if let Some(gate) = self.ingress.gates.get(premises_id) {
                stats.sheds += gate.sheds.load(Ordering::Relaxed);
            }
        }
        all.sort_by_key(|(p, _)| *p);
        Ok(all)
    }

    /// Per-premises statistics assembled purely from registry atomics —
    /// no shard round-trip, no cache lock, no quiescing. Unlike
    /// [`Fleet::stats`] this can lag in-flight epochs by a few counter
    /// increments, but it never touches a shard thread.
    pub fn stats_snapshot(&self) -> Vec<(u64, MonitorStats)> {
        let mut all: Vec<(u64, MonitorStats)> = self
            .monitor_obs
            .iter()
            .map(|(p, obs)| {
                let sheds =
                    self.ingress.gates.get(p).map(|g| g.sheds.load(Ordering::Relaxed)).unwrap_or(0);
                (*p, obs.stats_snapshot(sheds))
            })
            .collect();
        all.sort_by_key(|(p, _)| *p);
        all
    }

    /// Scans shed because their premises was never registered.
    pub fn unknown_sheds(&self) -> u64 {
        self.ingress.admission.unknown_sheds.get()
    }

    /// The shard a premises routes to (diagnostics).
    pub fn route(&self, premises_id: u64) -> Option<usize> {
        self.ingress.gates.get(&premises_id).map(|g| g.shard)
    }

    /// Writes each shard's structured trace ring to
    /// `<dir>/trace-shard-<i>.jsonl` (one JSON object per line, oldest
    /// first). Returns the paths written.
    pub fn dump_traces(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.ingress.shard_obs.len());
        for (i, obs) in self.ingress.shard_obs.iter().enumerate() {
            let path = dir.join(format!("trace-shard-{i}.jsonl"));
            std::fs::write(&path, obs.ring.to_jsonl())?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The durability directory, when the fleet runs durable.
    pub fn snapshot_dir(&self) -> Option<&std::path::Path> {
        self.cfg.dir.as_deref()
    }

    /// The per-shard trace rings, for serving `GET /trace.jsonl` via
    /// [`gem_obs::MetricsServer::bind_with_traces`]: a collector drains
    /// every retained span exactly once.
    pub fn trace_rings(&self) -> Vec<Arc<TraceRing>> {
        self.ingress.shard_obs.iter().map(|o| Arc::clone(&o.ring)).collect()
    }

    /// Graceful shutdown: drain everything pending, take a final
    /// snapshot (when durable), then join every shard. Returns the
    /// monitors still resident with their learned state, sorted by
    /// premises id — premises spilled by the hot cap stay in their
    /// snapshot files and are not rehydrated just to be returned.
    pub fn shutdown(mut self) -> Result<Vec<(u64, Monitor)>, FleetError> {
        self.stop_timer();
        // Incremental snapshots don't drain, so flush first: the final
        // manifest should fold every record admitted before shutdown.
        self.flush()?;
        if self.cfg.dir.is_some() {
            self.snapshot()?;
        }
        Ok(self.join(false))
    }

    /// Simulated crash: abandon queued records and kill the shards
    /// without snapshotting. The journal and the last committed manifest
    /// stay as they are — exactly what [`Fleet::recover`] expects.
    pub fn abort(mut self) {
        self.stop_timer();
        self.join(true);
    }

    fn stop_timer(&mut self) {
        if let Some((stop, handle)) = self.snapshot_timer.take() {
            let _ = stop.send(());
            let _ = handle.join();
        }
    }

    fn broadcast(&self, msg: impl Fn() -> ShardMsg) {
        for shard in &self.ingress.shards {
            let _ = shard.tx.send(msg());
        }
    }

    /// Joins all shard workers, collecting their monitors. `abort` makes
    /// them exit immediately; otherwise `Close` lets every shard finish
    /// its backlog — all shards wind down concurrently because every
    /// close is signalled before any join.
    fn join(&mut self, abort: bool) -> Vec<(u64, Monitor)> {
        // Disconnect the event channel so late notifications from the
        // closing shards are discarded (not mis-counted as consumer
        // overflow); shards use try_send, so they can't wedge on it.
        let (_, dead_rx) = bounded::<FleetEvent>(1);
        self.event_rx = dead_rx;
        for shard in &self.ingress.shards {
            // Raise `closed` first: a submitter that reserved depth
            // before this store will either deliver its record (the
            // worker waits out `depth`) or back out; one that reads the
            // flag sheds with `Shutdown`. No lock, no sender swap.
            shard.closed.store(true, Ordering::SeqCst);
            let _ = shard.tx.send(if abort { ShardMsg::Abort } else { ShardMsg::Close });
        }
        let mut monitors = Vec::new();
        for worker in &mut self.workers {
            if let Some(worker) = worker.take() {
                if let Ok(mut m) = worker.join() {
                    monitors.append(&mut m);
                }
            }
        }
        monitors.sort_by_key(|(p, _)| *p);
        monitors
    }

    /// Rebuilds a fleet from a durability directory: verify the
    /// manifest, replay the journaled epochs past each premises'
    /// watermark, and spawn. Premises *with* journal backlog are
    /// restored and replayed eagerly (the replayed events are bitwise
    /// identical to what the crashed fleet decided for those epochs);
    /// premises without backlog spawn cold — nothing is read or
    /// deserialized until their next record — so recovery cost and RSS
    /// track the backlog, not the tenant count.
    pub fn recover(cfg: FleetConfig) -> Result<Recovery, FleetError> {
        let dir = cfg
            .dir
            .clone()
            .ok_or_else(|| FleetError::Shard("recovery requires a durability directory".into()))?;
        let manifest = FleetManifest::load(&dir)?;
        manifest.verify_snapshots(&dir)?;
        // Journal entries grouped per premises, filtered to
        // epoch > watermark, ordered by epoch.
        let mut pending: HashMap<u64, Vec<crate::journal::JournalEntry>> = HashMap::new();
        for entry in read_all_journals(&dir)? {
            pending.entry(entry.premises_id).or_default().push(entry);
        }
        let mut seeds = Vec::with_capacity(manifest.premises.len());
        let mut recovered = Vec::new();
        let mut replayed = Vec::new();
        let mut replayed_epochs = 0u64;
        for entry in &manifest.premises {
            let state: MonitorState =
                serde::Deserialize::deserialize(&entry.sidecar).map_err(|e| {
                    FleetError::Corrupt(format!(
                        "premises {} sidecar is not a MonitorState: {e}",
                        entry.premises_id
                    ))
                })?;
            let stored = Stored {
                file: entry.snapshot_file.clone(),
                checksum: entry.snapshot_checksum.clone(),
                epochs: entry.epochs,
                state,
                synced: true,
            };
            let mut epochs: Vec<_> = pending
                .remove(&entry.premises_id)
                .unwrap_or_default()
                .into_iter()
                .filter(|j| j.epoch > entry.epochs)
                .collect();
            if epochs.is_empty() {
                seeds.push((entry.premises_id, PremisesSeed::Cold { epoch: entry.epochs, stored }));
                continue;
            }
            let gem = GemSnapshot::load(dir.join(&entry.snapshot_file))?.restore()?;
            let mut monitor = Monitor::from_state(gem, state);
            epochs.sort_by_key(|j| j.epoch);
            let mut watermark = entry.epochs;
            for journal_entry in epochs {
                if journal_entry.epoch != watermark + 1 {
                    return Err(FleetError::Corrupt(format!(
                        "premises {}: journal epoch {} does not follow watermark {watermark}",
                        entry.premises_id, journal_entry.epoch
                    )));
                }
                for event in monitor.process_batch(&journal_entry.records) {
                    replayed.push(FleetEvent {
                        premises_id: entry.premises_id,
                        event,
                        latency_s: 0.0,
                        trace: 0,
                    });
                }
                watermark = journal_entry.epoch;
                replayed_epochs += 1;
            }
            recovered.push((entry.premises_id, watermark - entry.epochs, watermark));
            seeds.push((
                entry.premises_id,
                PremisesSeed::Hot {
                    monitor: Box::new(monitor),
                    epoch: watermark,
                    stored: Some(stored),
                },
            ));
        }
        // Journal entries for premises absent from the manifest would
        // mean a snapshot-less tenant — nothing to attach them to.
        if let Some(premises_id) = pending.keys().next() {
            return Err(FleetError::Corrupt(format!(
                "journal mentions premises {premises_id} missing from the manifest"
            )));
        }
        let fleet = Fleet::spawn_at(seeds, cfg)?;
        // Recovery provenance lands in the trace rings: which premises
        // replayed how far, visible to the first `dump_traces` call.
        for (premises_id, epochs, watermark) in recovered {
            let shard = shard_for(premises_id, fleet.cfg.shards);
            fleet.ingress.shard_obs[shard].trace(
                TraceEvent::new("recovery")
                    .with("premises", premises_id)
                    .with("replayed_epochs", epochs)
                    .with("watermark", watermark),
            );
        }
        Ok(Recovery { fleet, replayed, replayed_epochs })
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_timer();
        if self.workers.iter().any(Option::is_some) {
            self.join(true);
        }
    }
}

/// One incremental snapshot round — snapshot → commit → truncate →
/// sweep — shared by [`Fleet::snapshot`] and the periodic timer
/// (serialized by the fleet's snapshot lock, so two rounds never
/// interleave). Nothing pauses: each shard handles its `Snapshot`
/// message between its own drain passes, writing fresh files only for
/// premises dirty since their stored image and group-commit-syncing any
/// unsynced spill files. Safe against a crash at any point: the
/// manifest rename is the commit, and truncation prunes only epochs at
/// or below the watermarks the round captured — an epoch decided while
/// the round runs journals past them and replays on recovery.
fn snapshot_all(txs: &[Sender<ShardMsg>], dir: &PathBuf) -> Result<(), FleetError> {
    let gone = |_| FleetError::Shard("shard gone during snapshot".into());
    let mut acks = Vec::with_capacity(txs.len());
    for tx in txs {
        let (ack_tx, ack_rx) = bounded(1);
        tx.send(ShardMsg::Snapshot { dir: dir.clone(), ack: ack_tx }).map_err(gone)?;
        acks.push(ack_rx);
    }
    let mut entries: Vec<PremisesEntry> = Vec::new();
    for ack in acks {
        let shard_entries = ack
            .recv()
            .map_err(|_| FleetError::Shard("shard died during snapshot".into()))?
            .map_err(FleetError::Shard)?;
        entries.extend(shard_entries);
    }
    let manifest = FleetManifest::new(entries);
    manifest.save(dir)?;
    // Commit done; journal entries folded into the manifest go.
    for tx in txs {
        tx.send(ShardMsg::TruncateJournal).map_err(gone)?;
    }
    gc_snapshots(dir, &manifest);
    Ok(())
}

/// Parses `premises-{id}-{epoch}.json` into `(id, epoch)`.
fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_prefix("premises-")?.strip_suffix(".json")?;
    let (id, epoch) = stem.rsplit_once('-')?;
    Some((id.parse().ok()?, epoch.parse().ok()?))
}

/// Deletes snapshot files the committed manifest has superseded — each
/// spill/snapshot writes fresh `premises-{id}-{epoch}.json` files, and
/// without this sweep a long-running fleet grows its durability
/// directory without bound. A file is removed only when the manifest
/// holds a *newer* image of the same premises (parsed epoch below the
/// committed watermark, name not the referenced file): spill files
/// written concurrently by the shards carry epochs at or past the
/// watermarks just committed and are left alone, as is anything that
/// does not parse as a per-premises snapshot (e.g. a shared seed file).
/// Best-effort: a leftover file is only wasted space, never a
/// correctness problem, and the rename commit guarantees nothing still
/// referenced is ever deleted.
fn gc_snapshots(dir: &PathBuf, manifest: &FleetManifest) {
    let index: HashMap<u64, (&str, u64)> = manifest
        .premises
        .iter()
        .map(|e| (e.premises_id, (e.snapshot_file.as_str(), e.epochs)))
        .collect();
    let Ok(read) = std::fs::read_dir(dir) else { return };
    for entry in read.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((premises_id, epoch)) = parse_snapshot_name(name) else { continue };
        let Some(&(kept, watermark)) = index.get(&premises_id) else { continue };
        if name != kept && epoch < watermark {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{Event, MonitorConfig};
    use gem_core::{Gem, GemConfig};
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn fleet_monitors(n: usize) -> (Vec<(u64, Monitor)>, Vec<Vec<SignalRecord>>) {
        let mut monitors = Vec::new();
        let mut streams = Vec::new();
        for user in 0..n {
            let mut cfg = ScenarioConfig::user(user as u32 + 1);
            cfg.train_duration_s = 120.0;
            cfg.n_test_in = 16;
            cfg.n_test_out = 16;
            let ds = Scenario::build(cfg).generate();
            let gem = Gem::fit(GemConfig::default(), &ds.train);
            monitors.push((user as u64 * 31 + 5, Monitor::new(gem, MonitorConfig::default())));
            streams.push(ds.test.iter().map(|t| t.record.clone()).collect());
        }
        (monitors, streams)
    }

    fn decisions_of(events: &[FleetEvent], premises: u64) -> Vec<(f64, gem_signal::Label, f64)> {
        events
            .iter()
            .filter(|e| e.premises_id == premises)
            .filter_map(|e| match e.event {
                Event::Decision { timestamp_s, label, score } => Some((timestamp_s, label, score)),
                _ => None,
            })
            .collect()
    }

    fn drain_events(fleet: &Fleet) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        while let Ok(e) = fleet.events().try_recv() {
            events.push(e);
        }
        events
    }

    #[test]
    fn rendezvous_routing_is_stable_and_covers_shards() {
        for premises in 0..64u64 {
            let s4 = shard_for(premises, 4);
            assert!(s4 < 4);
            assert_eq!(s4, shard_for(premises, 4), "routing must be deterministic");
        }
        // With enough premises every shard gets some.
        let mut hit = [false; 4];
        for premises in 0..64u64 {
            hit[shard_for(premises, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 premises should cover 4 shards");
        // Dropping from 4 to 3 shards only moves premises that hashed to
        // the removed shard's maxima — most stay put.
        let moved = (0..256u64)
            .filter(|&p| shard_for(p, 4) != 3 && shard_for(p, 4) != shard_for(p, 3))
            .count();
        assert_eq!(moved, 0, "rendezvous hashing never remaps survivors of a shrink");
    }

    #[test]
    fn fleet_processes_multiple_premises_and_reports_stats() {
        let (monitors, streams) = fleet_monitors(3);
        let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();
        let fleet =
            Fleet::spawn(monitors, FleetConfig { shards: 2, ..FleetConfig::default() }).unwrap();
        for (id, stream) in ids.iter().zip(&streams) {
            for record in stream.iter().take(8) {
                assert!(fleet.submit(*id, record.clone()).accepted());
            }
        }
        fleet.flush().unwrap();
        let stats = fleet.stats().unwrap();
        assert_eq!(stats.len(), 3);
        for (_, s) in &stats {
            assert_eq!(s.scans, 8);
            assert!(s.epochs >= 1);
        }
        // Unknown premises shed with the dedicated reason.
        assert_eq!(
            fleet.submit(999_999, streams[0][0].clone()),
            Admission::Shed(ShedReason::UnknownPremises)
        );
        assert_eq!(fleet.unknown_sheds(), 1);
        let monitors = fleet.shutdown().unwrap();
        assert_eq!(monitors.len(), 3);
    }

    #[test]
    fn paused_fleet_queues_and_flush_drains() {
        let (monitors, streams) = fleet_monitors(1);
        let id = monitors[0].0;
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig { shards: 1, max_batch: 64, ..FleetConfig::default() },
        )
        .unwrap();
        fleet.pause();
        for record in streams[0].iter().take(6) {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        // Paused: nothing processed yet.
        std::thread::sleep(Duration::from_millis(100));
        assert!(fleet.events().try_recv().is_err());
        fleet.flush().unwrap();
        let events = drain_events(&fleet);
        assert_eq!(decisions_of(&events, id).len(), 6);
        // One epoch: all 6 fit under max_batch.
        assert_eq!(fleet.stats().unwrap()[0].1.epochs, 1);
        fleet.resume();
    }

    #[test]
    fn admission_sheds_on_quota_and_counts_it() {
        let (monitors, streams) = fleet_monitors(2);
        let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();
        // Tiny queue on one shard; both premises on it.
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig { shards: 1, queue_per_shard: 8, ..FleetConfig::default() },
        )
        .unwrap();
        fleet.pause();
        // Quota = 8 / 2 premises = 4 each.
        let mut outcomes = Vec::new();
        for record in streams[0].iter().take(6) {
            outcomes.push(fleet.submit(ids[0], record.clone()));
        }
        let accepted = outcomes.iter().filter(|a| a.accepted()).count();
        assert_eq!(accepted, 4, "per-premises quota must cap a single tenant: {outcomes:?}");
        // The other premises still gets its share — fairness.
        assert!(fleet.submit(ids[1], streams[1][0].clone()).accepted());
        let stats = fleet.stats().unwrap();
        assert_eq!(stats[0].1.sheds, 2);
        fleet.resume();
        fleet.flush().unwrap();
    }

    #[test]
    fn undrained_consumer_drops_events_but_never_wedges() {
        let (monitors, streams) = fleet_monitors(1);
        let id = monitors[0].0;
        // Tiny queue → tiny event channel (2 * 1 * 4 + 64 = 72 events),
        // so an undrained consumer overflows it quickly.
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig { shards: 1, queue_per_shard: 4, max_batch: 4, ..FleetConfig::default() },
        )
        .unwrap();
        let n = 120usize;
        for k in 0..n {
            let record = streams[0][k % streams[0].len()].clone();
            while !fleet.submit(id, record.clone()).accepted() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        // Nothing was drained, yet flush must complete: the shard drops
        // overflow events instead of blocking on the full channel.
        fleet.flush().unwrap();
        let stats = fleet.stats().unwrap();
        assert_eq!(stats[0].1.scans, n, "every admitted record must be processed");
        let received = drain_events(&fleet);
        assert!(
            fleet.dropped_events() > 0,
            "an undrained consumer past channel capacity must drop (got {} events)",
            received.len()
        );
        // Every decision was either delivered or counted as dropped.
        let decisions =
            received.iter().filter(|e| matches!(e.event, Event::Decision { .. })).count();
        assert!(decisions as u64 + fleet.dropped_events() >= n as u64);
        fleet.shutdown().unwrap();
    }

    #[test]
    fn durable_fleet_recovers_from_crash_before_first_snapshot() {
        let dir = std::env::temp_dir().join("gem_fleet_recover_initial");
        let _ = std::fs::remove_dir_all(&dir);
        let (monitors, streams) = fleet_monitors(1);
        let id = monitors[0].0;
        let cfg = FleetConfig {
            shards: 1,
            max_batch: 4,
            dir: Some(dir.clone()),
            ..FleetConfig::default()
        };

        // Standalone reference with the same epoch grouping.
        let (ref_monitors, _) = fleet_monitors(1);
        let mut reference = ref_monitors.into_iter().next().unwrap().1;
        let records: Vec<SignalRecord> = streams[0].iter().take(4).cloned().collect();
        let expected = reference.process_batch(&records);

        // Crash after one journaled epoch, before any explicit or
        // shutdown snapshot. The base manifest written at spawn is what
        // makes this recoverable.
        let fleet = Fleet::spawn(monitors, cfg.clone()).unwrap();
        fleet.pause();
        for record in &records {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        fleet.flush().unwrap();
        let live: Vec<Event> = drain_events(&fleet).into_iter().map(|e| e.event).collect();
        fleet.abort();

        let recovery = Fleet::recover(cfg).unwrap();
        assert_eq!(recovery.replayed_epochs, 1);
        let replayed: Vec<Event> = recovery.replayed.iter().map(|e| e.event.clone()).collect();
        assert_eq!(replayed, live, "replay must reproduce the crashed fleet's decisions");
        assert_eq!(replayed, expected, "replay must match the standalone reference");
        recovery.fleet.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_and_recover_resume_bitwise() {
        let dir = std::env::temp_dir().join("gem_fleet_recover_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (monitors, streams) = fleet_monitors(2);
        let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();
        let cfg = FleetConfig {
            shards: 2,
            max_batch: 4,
            dir: Some(dir.clone()),
            ..FleetConfig::default()
        };

        // Reference run: no interruption. Chunked submits with
        // pause/flush give deterministic epoch boundaries.
        let (ref_monitors, _) = fleet_monitors(2);
        let ref_fleet =
            Fleet::spawn(ref_monitors, FleetConfig { dir: None, ..cfg.clone() }).unwrap();
        let mut ref_events = Vec::new();
        for chunk in 0..4 {
            ref_fleet.pause();
            for (id, stream) in ids.iter().zip(&streams) {
                for record in stream.iter().skip(chunk * 4).take(4) {
                    assert!(ref_fleet.submit(*id, record.clone()).accepted());
                }
            }
            ref_fleet.flush().unwrap();
            ref_events.extend(drain_events(&ref_fleet));
            ref_fleet.resume();
        }
        ref_fleet.shutdown().unwrap();

        // Durable run: chunks 0-1, snapshot, chunk 2 (journaled only),
        // crash. Recovery must replay chunk 2 bit-for-bit, then chunk 3
        // continues as if nothing happened.
        let fleet = Fleet::spawn(monitors, cfg.clone()).unwrap();
        let mut live_events = Vec::new();
        for chunk in 0..3 {
            fleet.pause();
            for (id, stream) in ids.iter().zip(&streams) {
                for record in stream.iter().skip(chunk * 4).take(4) {
                    assert!(fleet.submit(*id, record.clone()).accepted());
                }
            }
            fleet.flush().unwrap();
            live_events.extend(drain_events(&fleet));
            fleet.resume();
            if chunk == 1 {
                fleet.snapshot().unwrap();
                // The commit sweeps snapshots the manifest no longer
                // references (here: the initial epoch-0 files from
                // spawn), leaving exactly one file per premises.
                let snapshots: Vec<String> = std::fs::read_dir(&dir)
                    .unwrap()
                    .flatten()
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|n| n.starts_with("premises-") && n.ends_with(".json"))
                    .collect();
                assert_eq!(snapshots.len(), 2, "stale snapshots must be GC'd: {snapshots:?}");
            }
        }
        fleet.abort();

        let recovery = Fleet::recover(cfg).unwrap();
        assert_eq!(recovery.replayed_epochs, 2, "chunk 2 = one epoch per premises");
        for id in &ids {
            let expected: Vec<_> = decisions_of(&ref_events, *id);
            let mut got = decisions_of(&live_events[..], *id);
            got.truncate(8);
            // Pre-crash decisions match the reference...
            assert_eq!(got, expected[..8].to_vec());
            // ...the replayed chunk is bitwise identical...
            assert_eq!(decisions_of(&recovery.replayed, *id), expected[8..12].to_vec());
        }
        // ...and the recovered fleet continues the stream exactly.
        let fleet = recovery.fleet;
        fleet.pause();
        for (id, stream) in ids.iter().zip(&streams) {
            for record in stream.iter().skip(12).take(4) {
                assert!(fleet.submit(*id, record.clone()).accepted());
            }
        }
        fleet.flush().unwrap();
        let tail = drain_events(&fleet);
        for id in &ids {
            let expected: Vec<_> = decisions_of(&ref_events, *id);
            assert_eq!(decisions_of(&tail, *id), expected[12..16].to_vec());
        }
        fleet.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epochs_decided_after_snapshot_capture_survive_truncation_and_recovery() {
        let dir = std::env::temp_dir().join("gem_fleet_truncate_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (monitors, streams) = fleet_monitors(1);
        let id = monitors[0].0;
        let cfg = FleetConfig {
            shards: 1,
            max_batch: 1,
            dir: Some(dir.clone()),
            ..FleetConfig::default()
        };

        // Standalone reference: max_batch 1 makes every record its own
        // epoch, so grouping is deterministic regardless of timing.
        let (ref_monitors, _) = fleet_monitors(1);
        let mut reference = ref_monitors.into_iter().next().unwrap().1;
        let decisions = |events: &[Event]| -> Vec<Event> {
            events.iter().filter(|e| matches!(e, Event::Decision { .. })).cloned().collect()
        };
        // Records 0..8 run pre-crash, 8..10 post-recovery.
        let mut expected_precrash = Vec::new();
        for record in streams[0].iter().take(8) {
            expected_precrash.extend(reference.process_batch(std::slice::from_ref(record)));
        }
        let mut expected_tail = Vec::new();
        for record in streams[0].iter().skip(8).take(2) {
            expected_tail.extend(reference.process_batch(std::slice::from_ref(record)));
        }

        let journaled_epochs = |dir: &PathBuf| -> Vec<u64> {
            let mut epochs: Vec<u64> = read_all_journals(dir)
                .unwrap()
                .into_iter()
                .filter(|e| e.premises_id == id)
                .map(|e| e.epoch)
                .collect();
            epochs.sort_unstable();
            epochs
        };

        let fleet = Fleet::spawn(monitors, cfg.clone()).unwrap();
        // Epochs 1-4, then a snapshot: watermark 4, journal pruned.
        fleet.pause();
        for record in streams[0].iter().take(4) {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        fleet.flush().unwrap();
        fleet.resume();
        fleet.snapshot().unwrap();
        // The truncation message is fire-and-forget; an acked flush on
        // the same FIFO channel is the barrier that proves it landed.
        fleet.flush().unwrap();
        assert!(
            journaled_epochs(&dir).is_empty(),
            "truncation must prune everything at or below the watermark"
        );

        // Records 5-6 are pending in the shard when the next snapshot
        // round runs: the capture sees epoch 4, and the truncation it
        // triggers must not touch epochs the shard decides afterwards.
        fleet.pause();
        for record in streams[0].iter().skip(4).take(2) {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        fleet.snapshot().unwrap();
        fleet.flush().unwrap();
        fleet.resume();
        assert_eq!(
            journaled_epochs(&dir),
            vec![5, 6],
            "epochs decided after the capture must survive its truncation"
        );

        // Two more journal-only epochs, then crash.
        fleet.pause();
        for record in streams[0].iter().skip(6).take(2) {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        fleet.flush().unwrap();
        let live: Vec<Event> = drain_events(&fleet).into_iter().map(|e| e.event).collect();
        fleet.abort();

        let live_decisions = decisions(&live);
        assert_eq!(
            live_decisions,
            decisions(&expected_precrash),
            "pre-crash decisions must match the standalone reference"
        );

        let recovery = Fleet::recover(cfg).unwrap();
        assert_eq!(recovery.replayed_epochs, 4, "epochs 5-8 live only in the journal");
        let replayed: Vec<Event> = recovery.replayed.iter().map(|e| e.event.clone()).collect();
        let replayed_decisions = decisions(&replayed);
        assert_eq!(
            replayed_decisions,
            live_decisions[live_decisions.len() - replayed_decisions.len()..].to_vec(),
            "replay must reproduce the crashed fleet's post-watermark decisions"
        );

        // The recovered fleet continues the stream bitwise.
        let fleet = recovery.fleet;
        fleet.pause();
        for record in streams[0].iter().skip(8).take(2) {
            assert!(fleet.submit(id, record.clone()).accepted());
        }
        fleet.flush().unwrap();
        let tail: Vec<Event> = drain_events(&fleet).into_iter().map(|e| e.event).collect();
        assert_eq!(decisions(&tail), decisions(&expected_tail));
        fleet.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_cap_churn_stays_bitwise_identical_to_unbounded_fleet() {
        let dir = std::env::temp_dir().join("gem_fleet_hot_cap_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (monitors, streams) = fleet_monitors(2);
        let ids: Vec<u64> = monitors.iter().map(|(p, _)| *p).collect();
        let cfg = FleetConfig {
            shards: 1,
            max_batch: 4,
            dir: Some(dir.clone()),
            hot_premises_per_shard: Some(1),
            ..FleetConfig::default()
        };

        // Unbounded, ephemeral reference fleet: same epoch grouping,
        // everything stays resident.
        let (ref_monitors, _) = fleet_monitors(2);
        let ref_fleet = Fleet::spawn(
            ref_monitors,
            FleetConfig { shards: 1, max_batch: 4, ..FleetConfig::default() },
        )
        .unwrap();

        // Both premises share the one shard, so a hot cap of 1 forces
        // an evict/hydrate cycle on every chunk.
        let fleet = Fleet::spawn(monitors, cfg).unwrap();
        for chunk in 0..4 {
            for f in [&fleet, &ref_fleet] {
                f.pause();
                for (id, stream) in ids.iter().zip(&streams) {
                    for record in stream.iter().skip(chunk * 4).take(4) {
                        assert!(f.submit(*id, record.clone()).accepted());
                    }
                }
                f.flush().unwrap();
                f.resume();
            }
        }
        let events = drain_events(&fleet);
        let ref_events = drain_events(&ref_fleet);
        for id in &ids {
            assert_eq!(
                decisions_of(&events, *id),
                decisions_of(&ref_events, *id),
                "spill/hydrate churn must not change any decision"
            );
        }
        let stats = fleet.fleet_stats();
        let shard = &stats.shards[0];
        assert!(shard.evictions > 0, "cap 1 with 2 tenants must evict: {shard:?}");
        assert!(shard.hydrations > 0, "evicted tenants must hydrate on their next record");
        assert!(shard.hot_premises <= 1, "hot tier must respect the cap: {shard:?}");
        assert_eq!(shard.hot_premises + shard.cold_premises, 2);
        ref_fleet.shutdown().unwrap();
        fleet.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
