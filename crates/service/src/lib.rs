//! Streaming geofencing service on top of [`gem_core::Gem`].
//!
//! The paper's deployment (Fig. 2) is an IoT device that uploads scans to
//! a server, which performs in-out detection and notifies a caregiver.
//! This crate is that server-side layer:
//!
//! * [`Monitor`] — a single-user session wrapping a trained model with an
//!   *alert policy* (consecutive-outside debouncing, the practical fix
//!   for one-scan flukes) and an event/statistics log;
//! * [`Supervisor`] — a thread-safe wrapper that feeds a monitor from a
//!   crossbeam channel and publishes [`Event`]s on another, so device
//!   ingest and alert handling can live on different threads;
//! * [`Fleet`] — the multi-tenant runtime: premises are rendezvous-hashed
//!   onto worker shards, ingress is coalesced into batched decision
//!   epochs with explicit backpressure ([`Admission`]), and a write-ahead
//!   journal plus checksummed snapshots give bitwise crash recovery;
//! * [`obs`] — the observability wiring: every metric and trace event the
//!   runtime emits is registered there on a `gem_obs::Registry`, exposed
//!   via [`Fleet::registry`] for Prometheus/JSON scraping;
//! * [`IngressServer`] + [`wire`] — the TCP front door: length-prefixed,
//!   checksummed record frames parsed straight into shard submit calls,
//!   with the [`Admission`] vocabulary mapped onto per-connection credit
//!   flow control (see DESIGN.md, "Ingress architecture").

pub mod fleet;
pub mod ingress;
pub mod journal;
pub mod monitor;
pub mod obs;
mod shard;
pub mod supervisor;
pub mod wire;

pub use fleet::{shard_for, Fleet, FleetConfig, FleetError, FleetSubmitter, Recovery};
pub use ingress::{IngressConfig, IngressServer};
pub use journal::{JournalEntry, JournalWriter};
pub use monitor::{Event, Monitor, MonitorConfig, MonitorState, MonitorStats};
pub use obs::{FleetStats, JournalObs, MonitorObs, ObsOptions, ShardStats};
pub use shard::FleetEvent;
pub use supervisor::{Admission, ShedReason, Supervisor};
pub use wire::{Frame, WireError, WireShedReason, WireTrace, WireVerdict};
