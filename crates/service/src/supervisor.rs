//! Threaded supervision: feed scans in on one channel, receive events on
//! another. Ingest (the device uplink) and alert handling (the caregiver
//! notifier) usually live on different threads; the supervisor owns the
//! monitor in between.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::Serialize;

use gem_signal::SignalRecord;

use crate::monitor::{Event, Monitor, MonitorStats};

/// Why a scan was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ShedReason {
    /// The ingress queue was full; the caller should retry or drop.
    QueueFull,
    /// The worker has shut down; no further scans will be accepted.
    Shutdown,
    /// The premises is not registered with the fleet.
    UnknownPremises,
}

/// Outcome of submitting a scan — explicit backpressure instead of the
/// old boolean, so callers can distinguish "processing" from "behind"
/// from "dropped".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Admission {
    /// Enqueued; the worker was idle or nearly so.
    Accept,
    /// Enqueued behind `depth - 1` earlier scans (including this one the
    /// queue holds `depth`). A rising depth means ingest outpaces the
    /// model — the precursor to shedding.
    Queued {
        /// Queue occupancy right after this scan was enqueued.
        depth: usize,
    },
    /// Refused. The scan was *not* enqueued.
    Shed(ShedReason),
}

impl Admission {
    /// Whether the scan was enqueued (accepted or queued).
    pub fn accepted(&self) -> bool {
        !matches!(self, Admission::Shed(_))
    }

    /// Classifies an observed queue depth (occupancy *after* enqueue).
    pub(crate) fn from_depth(depth: usize) -> Admission {
        if depth <= 1 {
            Admission::Accept
        } else {
            Admission::Queued { depth }
        }
    }
}

/// Handle to a running monitoring thread.
pub struct Supervisor {
    scan_tx: Sender<SignalRecord>,
    event_rx: Receiver<Event>,
    stats: Arc<Mutex<MonitorStats>>,
    /// Scans enqueued but not yet processed. Kept here because the
    /// vendored channels expose no occupancy.
    depth: Arc<AtomicUsize>,
    /// Scans refused at admission. Owned by the submitting side — the
    /// worker never sees shed scans, so its stats cannot count them.
    sheds: AtomicU64,
    worker: Option<JoinHandle<Monitor>>,
}

impl Supervisor {
    /// Spawns the worker thread around a monitor. `queue` bounds both
    /// channels (back-pressure toward the ingest side).
    pub fn spawn(monitor: Monitor, queue: usize) -> Supervisor {
        let (scan_tx, scan_rx) = bounded::<SignalRecord>(queue);
        let (event_tx, event_rx) = bounded::<Event>(queue.max(16));
        let stats = Arc::new(Mutex::new(monitor.stats()));
        let stats_worker = Arc::clone(&stats);
        let depth = Arc::new(AtomicUsize::new(0));
        let depth_worker = Arc::clone(&depth);
        let worker = thread::spawn(move || {
            let mut monitor = monitor;
            while let Ok(record) = scan_rx.recv() {
                let events = monitor.process(&record);
                depth_worker.fetch_sub(1, Ordering::AcqRel);
                // Publish the stats snapshot before emitting events: a
                // consumer that reacts to an event must already see the
                // stats that produced it.
                *stats_worker.lock() = monitor.stats();
                for event in events {
                    // Receiver gone → stop quietly; the join still
                    // returns the model.
                    if event_tx.send(event).is_err() {
                        return monitor;
                    }
                }
            }
            monitor
        });
        Supervisor {
            scan_tx,
            event_rx,
            stats,
            depth,
            sheds: AtomicU64::new(0),
            worker: Some(worker),
        }
    }

    /// Submits a scan for processing without blocking. A full queue
    /// sheds the scan (and counts it) instead of stalling the ingest
    /// thread — the caller decides whether to retry.
    pub fn submit(&self, record: SignalRecord) -> Admission {
        match self.scan_tx.try_send(record) {
            Ok(()) => {
                let depth = self.depth.fetch_add(1, Ordering::AcqRel) + 1;
                Admission::from_depth(depth)
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                Admission::Shed(ShedReason::QueueFull)
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                Admission::Shed(ShedReason::Shutdown)
            }
        }
    }

    /// Submits a scan, blocking while the queue is full. Returns
    /// `Shed(Shutdown)` only when the worker is gone.
    pub fn submit_blocking(&self, record: SignalRecord) -> Admission {
        match self.scan_tx.send(record) {
            Ok(()) => {
                let depth = self.depth.fetch_add(1, Ordering::AcqRel) + 1;
                Admission::from_depth(depth)
            }
            Err(_) => Admission::Shed(ShedReason::Shutdown),
        }
    }

    /// The event stream.
    pub fn events(&self) -> &Receiver<Event> {
        &self.event_rx
    }

    /// Latest statistics snapshot, with admission-side shed counts
    /// folded in.
    pub fn stats(&self) -> MonitorStats {
        let mut stats = *self.stats.lock();
        stats.sheds += self.sheds.load(Ordering::Relaxed);
        stats
    }

    /// Stops the worker and returns the monitor (with its learned state).
    pub fn shutdown(mut self) -> Monitor {
        let worker = self.worker.take().expect("worker present");
        // Dropping `self` drops the only scan sender, closing the channel
        // so the worker's recv loop ends.
        drop(self);
        worker.join().expect("worker panicked")
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Close the scan channel so the worker's recv loop ends, and
            // drop the event receiver *before* joining: a worker blocked
            // on a full event queue would otherwise never observe the
            // shutdown and the join would deadlock.
            let (dead_tx, _) = bounded::<SignalRecord>(1);
            self.scan_tx = dead_tx;
            let (_, dead_rx) = bounded::<Event>(1);
            self.event_rx = dead_rx;
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorConfig;
    use gem_core::{Gem, GemConfig};
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn monitor() -> (Monitor, gem_signal::Dataset) {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 30;
        cfg.n_test_out = 30;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        (Monitor::new(gem, MonitorConfig::default()), ds)
    }

    #[test]
    fn processes_scans_across_threads() {
        let (m, ds) = monitor();
        let sup = Supervisor::spawn(m, 64);
        let n = 20;
        for t in ds.test.iter().take(n) {
            assert!(sup.submit(t.record.clone()).accepted());
        }
        let mut decisions = 0;
        while decisions < n {
            match sup.events().recv_timeout(std::time::Duration::from_secs(30)) {
                Ok(Event::Decision { .. }) => decisions += 1,
                Ok(_) => {}
                Err(e) => panic!("event stream stalled: {e}"),
            }
        }
        assert_eq!(sup.stats().scans, n);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let (m, ds) = monitor();
        // Tiny queue, no draining: inference is far slower than submit,
        // so hammering the queue must eventually shed.
        let sup = Supervisor::spawn(m, 2);
        let mut shed = 0;
        for _ in 0..50 {
            match sup.submit(ds.test[0].record.clone()) {
                Admission::Shed(ShedReason::QueueFull) => shed += 1,
                Admission::Shed(r) => panic!("unexpected shed reason {r:?}"),
                _ => {}
            }
        }
        assert!(shed > 0, "a 2-deep queue cannot absorb 50 instant submits");
        assert_eq!(sup.stats().sheds, shed);
    }

    #[test]
    fn drop_with_pending_events_does_not_deadlock() {
        let (m, ds) = monitor();
        // Tiny queues: the worker will fill the event channel and block.
        let sup = Supervisor::spawn(m, 2);
        for t in ds.test.iter().take(12) {
            sup.submit_blocking(t.record.clone());
        }
        // Give the worker time to wedge on the full event queue, then
        // drop without draining. A regression here hangs the test.
        std::thread::sleep(std::time::Duration::from_millis(300));
        drop(sup);
    }

    #[test]
    fn shutdown_returns_monitor_with_state() {
        let (m, ds) = monitor();
        let sup = Supervisor::spawn(m, 8);
        for t in ds.test.iter().take(5) {
            assert!(sup.submit_blocking(t.record.clone()).accepted());
        }
        // Drain so the worker isn't blocked on a full event queue.
        let mut seen = 0;
        while seen < 5 {
            if let Ok(Event::Decision { .. }) =
                sup.events().recv_timeout(std::time::Duration::from_secs(30))
            {
                seen += 1;
            }
        }
        let monitor = sup.shutdown();
        assert_eq!(monitor.stats().scans, 5);
    }
}
