//! Threaded supervision: feed scans in on one channel, receive events on
//! another. Ingest (the device uplink) and alert handling (the caregiver
//! notifier) usually live on different threads; the supervisor owns the
//! monitor in between.

use std::thread::{self, JoinHandle};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use gem_signal::SignalRecord;

use crate::monitor::{Event, Monitor, MonitorStats};

/// Handle to a running monitoring thread.
pub struct Supervisor {
    scan_tx: Sender<SignalRecord>,
    event_rx: Receiver<Event>,
    stats: Arc<Mutex<MonitorStats>>,
    worker: Option<JoinHandle<Monitor>>,
}

impl Supervisor {
    /// Spawns the worker thread around a monitor. `queue` bounds both
    /// channels (back-pressure toward the ingest side).
    pub fn spawn(monitor: Monitor, queue: usize) -> Supervisor {
        let (scan_tx, scan_rx) = bounded::<SignalRecord>(queue);
        let (event_tx, event_rx) = bounded::<Event>(queue.max(16));
        let stats = Arc::new(Mutex::new(monitor.stats()));
        let stats_worker = Arc::clone(&stats);
        let worker = thread::spawn(move || {
            let mut monitor = monitor;
            while let Ok(record) = scan_rx.recv() {
                let events = monitor.process(&record);
                // Publish the stats snapshot before emitting events: a
                // consumer that reacts to an event must already see the
                // stats that produced it.
                *stats_worker.lock() = monitor.stats();
                for event in events {
                    // Receiver gone → stop quietly; the join still
                    // returns the model.
                    if event_tx.send(event).is_err() {
                        return monitor;
                    }
                }
            }
            monitor
        });
        Supervisor { scan_tx, event_rx, stats, worker: Some(worker) }
    }

    /// Submits a scan for processing (blocks when the queue is full).
    /// Returns false when the worker has shut down.
    pub fn submit(&self, record: SignalRecord) -> bool {
        self.scan_tx.send(record).is_ok()
    }

    /// The event stream.
    pub fn events(&self) -> &Receiver<Event> {
        &self.event_rx
    }

    /// Latest statistics snapshot.
    pub fn stats(&self) -> MonitorStats {
        *self.stats.lock()
    }

    /// Stops the worker and returns the monitor (with its learned state).
    pub fn shutdown(mut self) -> Monitor {
        let worker = self.worker.take().expect("worker present");
        // Dropping `self` drops the only scan sender, closing the channel
        // so the worker's recv loop ends.
        drop(self);
        worker.join().expect("worker panicked")
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Close the scan channel so the worker's recv loop ends, and
            // drop the event receiver *before* joining: a worker blocked
            // on a full event queue would otherwise never observe the
            // shutdown and the join would deadlock.
            let (dead_tx, _) = bounded::<SignalRecord>(1);
            self.scan_tx = dead_tx;
            let (_, dead_rx) = bounded::<Event>(1);
            self.event_rx = dead_rx;
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorConfig;
    use gem_core::{Gem, GemConfig};
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn monitor() -> (Monitor, gem_signal::Dataset) {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 30;
        cfg.n_test_out = 30;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        (Monitor::new(gem, MonitorConfig::default()), ds)
    }

    #[test]
    fn processes_scans_across_threads() {
        let (m, ds) = monitor();
        let sup = Supervisor::spawn(m, 8);
        let n = 20;
        for t in ds.test.iter().take(n) {
            assert!(sup.submit(t.record.clone()));
        }
        let mut decisions = 0;
        while decisions < n {
            match sup.events().recv_timeout(std::time::Duration::from_secs(30)) {
                Ok(Event::Decision { .. }) => decisions += 1,
                Ok(_) => {}
                Err(e) => panic!("event stream stalled: {e}"),
            }
        }
        assert_eq!(sup.stats().scans, n);
    }

    #[test]
    fn drop_with_pending_events_does_not_deadlock() {
        let (m, ds) = monitor();
        // Tiny queues: the worker will fill the event channel and block.
        let sup = Supervisor::spawn(m, 2);
        for t in ds.test.iter().take(12) {
            sup.submit(t.record.clone());
        }
        // Give the worker time to wedge on the full event queue, then
        // drop without draining. A regression here hangs the test.
        std::thread::sleep(std::time::Duration::from_millis(300));
        drop(sup);
    }

    #[test]
    fn shutdown_returns_monitor_with_state() {
        let (m, ds) = monitor();
        let sup = Supervisor::spawn(m, 8);
        for t in ds.test.iter().take(5) {
            sup.submit(t.record.clone());
        }
        // Drain so the worker isn't blocked on a full event queue.
        let mut seen = 0;
        while seen < 5 {
            if let Ok(Event::Decision { .. }) =
                sup.events().recv_timeout(std::time::Duration::from_secs(30))
            {
                seen += 1;
            }
        }
        let monitor = sup.shutdown();
        assert_eq!(monitor.stats().scans, 5);
    }
}
