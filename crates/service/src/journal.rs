//! Write-ahead journal for fleet decision epochs.
//!
//! Each shard appends one line per decision epoch *before* processing it:
//! `<fnv1a64-hex> <compact-json>\n`. The JSON is a [`JournalEntry`] — the
//! premises, the epoch number and the exact records in the batch. Replay
//! after a crash re-runs `Monitor::process_batch` on the recorded
//! batches, which reproduces the uninterrupted decision stream bit for
//! bit (model updates and the RNG stream are resumed from the snapshot).
//!
//! The reader is truncation-tolerant: a torn or corrupt tail line (the
//! crash case an append-only log actually produces) ends the scan
//! instead of failing recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gem_core::fnv1a64_hex;
use gem_signal::SignalRecord;

use crate::obs::JournalObs;

/// One journaled decision epoch: the replay unit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Tenant the batch belongs to.
    pub premises_id: u64,
    /// Epoch number, per premises, contiguous from 1. An entry is
    /// replayed when its epoch exceeds the manifest watermark.
    pub epoch: u64,
    /// The records of the batch, in submission order.
    pub records: Vec<SignalRecord>,
}

/// Journal filename for one shard.
pub fn journal_file(shard: usize) -> String {
    format!("journal-shard-{shard}.log")
}

/// Append-side handle, owned by a shard.
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    obs: Option<JournalObs>,
}

impl JournalWriter {
    /// Opens (creating if needed) the journal in append mode.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<JournalWriter> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JournalWriter { path, file: BufWriter::new(file), obs: None })
    }

    /// Attaches timing/volume instruments (see [`JournalObs`]).
    pub fn set_obs(&mut self, obs: JournalObs) {
        self.obs = Some(obs);
    }

    /// The journal file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one epoch and syncs it to stable storage. Must be called
    /// before the epoch is processed (write-ahead), so a crash mid-epoch
    /// replays it instead of losing it. The `sync_data` makes the
    /// guarantee hold for power loss and kernel panics, not just process
    /// crashes. Returns the bytes appended.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<usize> {
        let bytes = self.append_nosync(entry)?;
        self.commit()?;
        Ok(bytes)
    }

    /// Appends one epoch *without* syncing. A shard draining several
    /// premises in one pass journals every selected epoch with this and
    /// then calls [`commit`](Self::commit) once, amortizing the fsync
    /// across the pass. Write-ahead still holds for every entry: the
    /// commit must complete before any of the pass's epochs is
    /// processed. Returns the bytes appended.
    pub fn append_nosync(&mut self, entry: &JournalEntry) -> io::Result<usize> {
        let timed = self.obs.as_ref().filter(|o| o.enabled).map(|_| Instant::now());
        let json = serde_json::to_string(entry).map_err(|e| io::Error::other(e.to_string()))?;
        // checksum (16 hex) + space + json + newline
        let bytes = 16 + 1 + json.len() + 1;
        writeln!(self.file, "{} {}", fnv1a64_hex(json.as_bytes()), json)?;
        if let (Some(obs), Some(start)) = (&self.obs, timed) {
            obs.append_seconds.record(elapsed_ns(start));
        }
        if let Some(obs) = &self.obs {
            obs.appends.inc();
            obs.bytes.add(bytes as u64);
        }
        Ok(bytes)
    }

    /// Flushes and syncs everything appended so far to stable storage.
    /// The durability barrier for [`append_nosync`](Self::append_nosync).
    pub fn commit(&mut self) -> io::Result<()> {
        let timed = self.obs.as_ref().filter(|o| o.enabled).map(|_| Instant::now());
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        if let (Some(obs), Some(start)) = (&self.obs, timed) {
            obs.fsync_seconds.record(elapsed_ns(start));
        }
        Ok(())
    }

    /// Empties the journal. Only safe after every entry has been folded
    /// into a committed manifest (the fleet truncates post-commit, with
    /// the shard quiescent).
    pub fn reset(&mut self) -> io::Result<()> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&self.path)?;
        self.file = BufWriter::new(file);
        Ok(())
    }

    /// Rewrites the journal keeping only the entries `keep` accepts —
    /// the truncation primitive for snapshot commits: entries folded
    /// into the committed manifest go, entries past its watermark stay.
    ///
    /// The rewrite is crash-safe: the retained entries are written to a
    /// temp file, synced, and renamed over the journal, so a crash at
    /// any point leaves either the old journal or the pruned one —
    /// never a partial rewrite.
    /// Returns the number of entries pruned.
    pub fn retain(&mut self, keep: impl Fn(&JournalEntry) -> bool) -> io::Result<usize> {
        let timed = self.obs.as_ref().filter(|o| o.enabled).map(|_| Instant::now());
        let pruned = self.retain_inner(keep)?;
        if let (Some(obs), Some(start)) = (&self.obs, timed) {
            obs.retain_seconds.record(elapsed_ns(start));
        }
        Ok(pruned)
    }

    /// Incremental-snapshot-aware truncation: prunes entries at or below
    /// each premises' committed watermark, keeping entries for premises
    /// the map doesn't mention (they were never snapshotted, so every
    /// journaled epoch is still the only durable copy). Runs on the
    /// owning shard between drain passes — no fleet-wide lock is needed
    /// because each shard only rewrites its own journal file, and the
    /// watermarks passed in come from an already-committed manifest.
    /// Returns the number of entries pruned.
    pub fn retain_committed(
        &mut self,
        watermarks: &std::collections::HashMap<u64, u64>,
    ) -> io::Result<usize> {
        self.retain(|e| watermarks.get(&e.premises_id).is_none_or(|&w| e.epoch > w))
    }

    fn retain_inner(&mut self, keep: impl Fn(&JournalEntry) -> bool) -> io::Result<usize> {
        self.file.flush()?;
        let entries = read_journal(&self.path)?;
        let tmp = self.path.with_extension("log.tmp");
        let mut kept = 0usize;
        {
            let file = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            let mut w = BufWriter::new(file);
            for entry in entries.iter().filter(|e| keep(e)) {
                let json =
                    serde_json::to_string(entry).map_err(|e| io::Error::other(e.to_string()))?;
                writeln!(w, "{} {}", fnv1a64_hex(json.as_bytes()), json)?;
                kept += 1;
            }
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.file = BufWriter::new(OpenOptions::new().create(true).append(true).open(&self.path)?);
        Ok(entries.len() - kept)
    }
}

/// Saturating nanoseconds since `start`.
fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Reads one journal file. Lines with a checksum mismatch or malformed
/// JSON end the scan (torn tail); everything before them is returned.
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<Vec<JournalEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some((checksum, json)) = line.split_once(' ') else { break };
        if fnv1a64_hex(json.as_bytes()) != checksum {
            break;
        }
        match serde_json::from_str::<JournalEntry>(json) {
            Ok(entry) => entries.push(entry),
            Err(_) => break,
        }
    }
    Ok(entries)
}

/// Reads every `journal-shard-*.log` in a durability directory, in
/// filename order. Shard counts may change between runs; per-premises
/// epoch numbers, not file layout, define what replays.
pub fn read_all_journals(dir: impl AsRef<Path>) -> io::Result<Vec<JournalEntry>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal-shard-") && n.ends_with(".log"))
        })
        .collect();
    files.sort();
    let mut entries = Vec::new();
    for f in files {
        entries.extend(read_journal(f)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::MacAddr;

    fn entry(premises: u64, epoch: u64) -> JournalEntry {
        JournalEntry {
            premises_id: premises,
            epoch,
            records: vec![SignalRecord::from_pairs(
                epoch as f64,
                [(MacAddr::from_raw(0xA0), -50.0), (MacAddr::from_raw(0xA1), -60.0)],
            )],
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = std::env::temp_dir().join("gem_journal_rt");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(journal_file(0));
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(7, 1)).unwrap();
        w.append(&entry(9, 1)).unwrap();
        w.append(&entry(7, 2)).unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(back, vec![entry(7, 1), entry(9, 1), entry(7, 2)]);
        // Reopening appends after existing entries.
        drop(w);
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(9, 2)).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = std::env::temp_dir().join("gem_journal_torn");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(journal_file(0));
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(7, 1)).unwrap();
        w.append(&entry(7, 2)).unwrap();
        // Simulate a crash mid-write: chop bytes off the last line.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(back, vec![entry(7, 1)], "torn tail line must be dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = std::env::temp_dir().join("gem_journal_reset");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(journal_file(3));
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(1, 1)).unwrap();
        w.reset().unwrap();
        assert!(read_journal(&path).unwrap().is_empty());
        w.append(&entry(1, 2)).unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![entry(1, 2)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_prunes_committed_entries_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join("gem_journal_retain");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(journal_file(0));
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(7, 1)).unwrap();
        w.append(&entry(9, 1)).unwrap();
        w.append(&entry(7, 2)).unwrap();
        // Commit watermark: premises 7 snapshotted at epoch 1, premises 9
        // at epoch 1 — only 7's epoch 2 is past the manifest.
        w.retain(|e| e.epoch > 1).unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![entry(7, 2)]);
        // The writer keeps appending after the retained entries.
        w.append(&entry(9, 2)).unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![entry(7, 2), entry(9, 2)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_committed_prunes_per_premises_watermarks() {
        let dir = std::env::temp_dir().join("gem_journal_retain_committed");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(journal_file(0));
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&entry(7, 1)).unwrap();
        w.append(&entry(7, 2)).unwrap();
        w.append(&entry(9, 1)).unwrap();
        w.append(&entry(11, 1)).unwrap();
        // 7 committed through epoch 1, 9 through epoch 1; 11 was never
        // snapshotted so its entries must survive untouched.
        let watermarks = std::collections::HashMap::from([(7u64, 1u64), (9, 1), (13, 5)]);
        let pruned = w.retain_committed(&watermarks).unwrap();
        assert_eq!(pruned, 2);
        assert_eq!(read_journal(&path).unwrap(), vec![entry(7, 2), entry(11, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_all_shard_journals_and_ignores_missing() {
        let dir = std::env::temp_dir().join("gem_journal_all");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(read_journal(dir.join(journal_file(0))).unwrap().is_empty());
        let mut w0 = JournalWriter::open(dir.join(journal_file(0))).unwrap();
        let mut w1 = JournalWriter::open(dir.join(journal_file(1))).unwrap();
        w0.append(&entry(2, 1)).unwrap();
        w1.append(&entry(3, 1)).unwrap();
        fs::write(dir.join("manifest.json"), "{}").unwrap();
        let all = read_all_journals(&dir).unwrap();
        assert_eq!(all.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
