//! Single-session monitoring with alert debouncing.

use serde::{Deserialize, Serialize};

use gem_core::{CacheStats, Decision, Gem};
use gem_obs::TraceEvent;
use gem_signal::{Label, SignalRecord};

use crate::obs::MonitorObs;

/// Alert policy and bookkeeping knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Raise the alert only after this many *consecutive* outside
    /// decisions (debounces single-scan flukes; 1 = immediate).
    pub alert_after: usize,
    /// Clear an active alert after this many consecutive in-premises
    /// decisions.
    pub clear_after: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { alert_after: 3, clear_after: 2 }
    }
}

/// Events emitted by [`Monitor::process`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum Event {
    /// A scan was classified.
    Decision {
        /// Scan timestamp.
        timestamp_s: f64,
        /// Predicted class.
        label: Label,
        /// Outlier score.
        score: f64,
    },
    /// The consecutive-outside threshold was crossed.
    AlertRaised {
        /// Timestamp of the scan that crossed the threshold.
        timestamp_s: f64,
        /// Consecutive outside decisions at that point.
        consecutive_out: usize,
    },
    /// An active alert was cleared by consecutive in-premises scans.
    AlertCleared {
        /// Timestamp of the clearing scan.
        timestamp_s: f64,
    },
}

/// Running statistics of a monitoring session.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Scans processed.
    pub scans: usize,
    /// Scans classified in-premises.
    pub in_decisions: usize,
    /// Scans classified outside.
    pub out_decisions: usize,
    /// Alerts raised.
    pub alerts: usize,
    /// Model self-updates performed.
    pub model_updates: usize,
    /// Streaming-engine MAC-aggregate cache hits.
    pub cache_hits: u64,
    /// Streaming-engine MAC-aggregate cache misses.
    pub cache_misses: u64,
    /// Decision epochs applied (batched [`Monitor::process_batch`] calls;
    /// each is one model-consistent group, the fleet's replay unit).
    #[serde(default)]
    pub epochs: u64,
    /// Scans refused at admission (queue full). Counted by the layer that
    /// owns the queue — supervisor or fleet — never by the monitor itself.
    #[serde(default)]
    pub sheds: u64,
}

/// Serializable alert-policy state of a [`Monitor`] — everything above
/// the model. Together with a [`gem_core::GemSnapshot`] this fully
/// reconstructs a session; the fleet stores it as the manifest sidecar.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonitorState {
    /// Alert policy.
    pub cfg: MonitorConfig,
    /// Consecutive outside decisions at capture.
    pub consecutive_out: usize,
    /// Consecutive in-premises decisions at capture.
    pub consecutive_in: usize,
    /// Whether an alert was active at capture.
    pub alert_active: bool,
    /// Session statistics (without live cache counters, which restart
    /// with the streaming engine).
    pub stats: MonitorStats,
}

/// A monitoring session: a trained GEM model plus alert state.
pub struct Monitor {
    gem: Gem,
    cfg: MonitorConfig,
    consecutive_out: usize,
    consecutive_in: usize,
    alert_active: bool,
    stats: MonitorStats,
    /// Registry-backed instruments, attached by the fleet (optional for
    /// standalone monitors).
    obs: Option<MonitorObs>,
    /// Engine cache counters as of the last processed scan/batch —
    /// lets [`Monitor::stats_snapshot`] report cache figures without
    /// touching the engine at read time.
    cache_mirror: CacheStats,
}

impl Monitor {
    /// Wraps a trained model.
    pub fn new(gem: Gem, cfg: MonitorConfig) -> Self {
        assert!(cfg.alert_after >= 1 && cfg.clear_after >= 1);
        let cache_mirror = gem.cache_stats();
        Monitor {
            gem,
            cfg,
            consecutive_out: 0,
            consecutive_in: 0,
            alert_active: false,
            stats: MonitorStats::default(),
            obs: None,
            cache_mirror,
        }
    }

    /// Attaches registry-backed instruments. Counters are seeded with
    /// the session's existing statistics, so attaching to a recovered
    /// monitor continues its series instead of zeroing them.
    pub fn set_obs(&mut self, obs: MonitorObs) {
        self.cache_mirror = self.gem.cache_stats();
        obs.seed(&self.stats, self.cache_mirror);
        self.obs = Some(obs);
    }

    /// Re-attaches registry-backed instruments without seeding them.
    /// Used when a spilled premises is hydrated back into its shard:
    /// the instruments kept running while the monitor was cold, so
    /// seeding again would double-count everything up to the spill.
    pub(crate) fn attach_obs(&mut self, obs: MonitorObs) {
        self.cache_mirror = self.gem.cache_stats();
        self.obs = Some(obs);
    }

    /// Processes one scan; returns the decision event plus any alert
    /// transitions it triggered.
    pub fn process(&mut self, record: &SignalRecord) -> Vec<Event> {
        let decision: Decision = self.gem.infer(record);
        let mut events = Vec::with_capacity(2);
        self.apply_decision(record.timestamp_s, &decision, &mut events);
        self.mirror_cache();
        events
    }

    /// Processes a batch of scans as *one decision epoch*: the model
    /// scores all records against the state at the start of the batch
    /// (see [`Gem::infer_batch`]), then the alert policy folds the
    /// decisions in submission order. This is the unit the fleet
    /// coalesces, journals and replays — identical batches always yield
    /// identical events.
    pub fn process_batch(&mut self, records: &[SignalRecord]) -> Vec<Event> {
        if records.is_empty() {
            return Vec::new();
        }
        let decisions = self.gem.infer_batch(records);
        self.stats.epochs += 1;
        if let Some(obs) = &self.obs {
            obs.epochs.inc();
        }
        let mut events = Vec::with_capacity(records.len() + 2);
        for (record, decision) in records.iter().zip(&decisions) {
            self.apply_decision(record.timestamp_s, decision, &mut events);
        }
        self.mirror_cache();
        events
    }

    /// Folds the engine's cache-counter movement since the last scan
    /// into the registry counters and refreshes the mirror.
    fn mirror_cache(&mut self) {
        let cache = self.gem.cache_stats();
        if let Some(obs) = &self.obs {
            obs.cache_hits.add(cache.hits.saturating_sub(self.cache_mirror.hits));
            obs.cache_misses.add(cache.misses.saturating_sub(self.cache_mirror.misses));
            obs.cache_invalidations
                .add(cache.invalidations.saturating_sub(self.cache_mirror.invalidations));
        }
        self.cache_mirror = cache;
    }

    /// Folds one decision into the statistics and the alert policy,
    /// appending the resulting events.
    fn apply_decision(&mut self, timestamp_s: f64, decision: &Decision, events: &mut Vec<Event>) {
        self.stats.scans += 1;
        if decision.updated {
            self.stats.model_updates += 1;
            if let Some(obs) = &self.obs {
                obs.self_updates.inc();
                obs.trace(
                    TraceEvent::new("self_update")
                        .with("premises", obs.premises_id)
                        .with("ts", timestamp_s)
                        .with("score", decision.score),
                );
            }
        }
        events.push(Event::Decision { timestamp_s, label: decision.label, score: decision.score });
        match decision.label {
            Label::Out => {
                self.stats.out_decisions += 1;
                self.consecutive_out += 1;
                self.consecutive_in = 0;
                if let Some(obs) = &self.obs {
                    obs.decisions_out.inc();
                }
                if !self.alert_active && self.consecutive_out >= self.cfg.alert_after {
                    self.alert_active = true;
                    self.stats.alerts += 1;
                    if let Some(obs) = &self.obs {
                        obs.alerts.inc();
                        obs.trace(
                            TraceEvent::new("alert_raised")
                                .with("premises", obs.premises_id)
                                .with("ts", timestamp_s)
                                .with("consecutive_out", self.consecutive_out),
                        );
                    }
                    events.push(Event::AlertRaised {
                        timestamp_s,
                        consecutive_out: self.consecutive_out,
                    });
                }
            }
            Label::In => {
                self.stats.in_decisions += 1;
                self.consecutive_in += 1;
                self.consecutive_out = 0;
                if let Some(obs) = &self.obs {
                    obs.decisions_in.inc();
                }
                if self.alert_active && self.consecutive_in >= self.cfg.clear_after {
                    self.alert_active = false;
                    if let Some(obs) = &self.obs {
                        obs.trace(
                            TraceEvent::new("alert_cleared")
                                .with("premises", obs.premises_id)
                                .with("ts", timestamp_s),
                        );
                    }
                    events.push(Event::AlertCleared { timestamp_s });
                }
            }
        }
    }

    /// Whether an alert is currently active.
    pub fn alert_active(&self) -> bool {
        self.alert_active
    }

    /// Session statistics so far, with live engine cache counters
    /// merged in (reads the engine on every call).
    pub fn stats(&self) -> MonitorStats {
        let cache = self.gem.cache_stats();
        MonitorStats { cache_hits: cache.hits, cache_misses: cache.misses, ..self.stats }
    }

    /// Snapshot-consistent statistics without touching the engine:
    /// cache figures come from the mirror captured at the end of the
    /// last scan/batch, everything else from the same running counters
    /// as [`Monitor::stats`]. The mirror lags live engine counters by
    /// at most the in-flight batch — the right trade for a read path
    /// that must never contend with inference.
    pub fn stats_snapshot(&self) -> MonitorStats {
        MonitorStats {
            cache_hits: self.cache_mirror.hits,
            cache_misses: self.cache_mirror.misses,
            ..self.stats
        }
    }

    /// Borrow the underlying model (e.g. to snapshot it).
    pub fn gem(&self) -> &Gem {
        &self.gem
    }

    /// Consumes the monitor and returns the model.
    pub fn into_gem(self) -> Gem {
        self.gem
    }

    /// Captures the serializable above-the-model state. Pair with a
    /// model snapshot to persist the whole session.
    pub fn state(&self) -> MonitorState {
        MonitorState {
            cfg: self.cfg,
            consecutive_out: self.consecutive_out,
            consecutive_in: self.consecutive_in,
            alert_active: self.alert_active,
            stats: self.stats,
        }
    }

    /// Rebuilds a session from a restored model and a captured
    /// [`MonitorState`] — the recovery path.
    pub fn from_state(gem: Gem, state: MonitorState) -> Monitor {
        assert!(state.cfg.alert_after >= 1 && state.cfg.clear_after >= 1);
        let cache_mirror = gem.cache_stats();
        Monitor {
            gem,
            cfg: state.cfg,
            consecutive_out: state.consecutive_out,
            consecutive_in: state.consecutive_in,
            alert_active: state.alert_active,
            stats: state.stats,
            obs: None,
            cache_mirror,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::GemConfig;
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn monitor() -> (Monitor, gem_signal::Dataset) {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 40;
        cfg.n_test_out = 40;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        (Monitor::new(gem, MonitorConfig::default()), ds)
    }

    #[test]
    fn every_scan_yields_a_decision_event() {
        let (mut m, ds) = monitor();
        for t in ds.test.iter().take(20) {
            let events = m.process(&t.record);
            assert!(matches!(events[0], Event::Decision { .. }));
        }
        assert_eq!(m.stats().scans, 20);
    }

    #[test]
    fn alert_debounces_and_raises() {
        let (mut m, ds) = monitor();
        // Feed a scan that is an outlier by rule (unknown MACs) repeatedly.
        let alien = gem_signal::SignalRecord::from_pairs(
            1.0,
            [(gem_signal::MacAddr::from_raw(0xFFFF_0001), -40.0)],
        );
        let e1 = m.process(&alien);
        let e2 = m.process(&alien);
        assert!(!m.alert_active(), "not yet: {e1:?} {e2:?}");
        let e3 = m.process(&alien);
        assert!(m.alert_active());
        assert!(e3.iter().any(|e| matches!(e, Event::AlertRaised { consecutive_out: 3, .. })));
        assert_eq!(m.stats().alerts, 1);
        // Further outside scans do not re-raise.
        let e4 = m.process(&alien);
        assert_eq!(e4.len(), 1);
        let _ = ds;
    }

    #[test]
    fn alert_clears_after_consecutive_in() {
        let (mut m, ds) = monitor();
        let alien = gem_signal::SignalRecord::from_pairs(
            1.0,
            [(gem_signal::MacAddr::from_raw(0xFFFF_0002), -40.0)],
        );
        for _ in 0..3 {
            m.process(&alien);
        }
        assert!(m.alert_active());
        // Feed in-premises scans until cleared.
        let mut cleared = false;
        for t in ds.test.iter().filter(|t| t.label == gem_signal::Label::In) {
            let events = m.process(&t.record);
            if events.iter().any(|e| matches!(e, Event::AlertCleared { .. })) {
                cleared = true;
                break;
            }
        }
        assert!(cleared, "alert should eventually clear on in-premises scans");
        assert!(!m.alert_active());
    }

    #[test]
    fn stats_add_up() {
        let (mut m, ds) = monitor();
        for t in &ds.test {
            m.process(&t.record);
        }
        let s = m.stats();
        assert_eq!(s.scans, ds.test.len());
        assert_eq!(s.in_decisions + s.out_decisions, s.scans);
    }

    #[test]
    fn batch_epochs_are_deterministic() {
        // Two identical monitors (fixed seeds) fed the same chunks must
        // produce identical event streams — the property fleet replay
        // relies on.
        let (mut a, ds) = monitor();
        let (mut b, _) = monitor();
        let records: Vec<_> = ds.test.iter().map(|t| t.record.clone()).take(24).collect();
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        for chunk in records.chunks(5) {
            ea.extend(a.process_batch(chunk));
        }
        for chunk in records.chunks(5) {
            eb.extend(b.process_batch(chunk));
        }
        assert_eq!(ea, eb);
        assert_eq!(a.stats().epochs, 5, "24 records in chunks of 5 = 5 epochs");
        assert_eq!(a.stats().scans, 24);
        assert!(a.process_batch(&[]).is_empty());
        assert_eq!(a.stats().epochs, 5, "empty batches are not epochs");
    }

    #[test]
    fn state_restores_alert_policy_mid_stream() {
        let (mut m, ds) = monitor();
        let alien = gem_signal::SignalRecord::from_pairs(
            1.0,
            [(gem_signal::MacAddr::from_raw(0xFFFF_0003), -40.0)],
        );
        m.process(&alien);
        m.process(&alien);
        // Two consecutive outs: one more would raise. Snapshot here.
        let state = m.state();
        let snap = gem_core::GemSnapshot::capture(m.gem());
        let json = snap.to_json().unwrap();
        let gem = gem_core::GemSnapshot::from_json(&json).unwrap().restore().unwrap();
        let mut restored = Monitor::from_state(gem, state);
        assert!(!restored.alert_active());
        let events = restored.process(&alien);
        assert!(
            events.iter().any(|e| matches!(e, Event::AlertRaised { consecutive_out: 3, .. })),
            "restored monitor must remember the 2-out streak: {events:?}"
        );
        let _ = ds;
    }

    #[test]
    #[should_panic]
    fn rejects_zero_thresholds() {
        let (m, _) = monitor();
        let gem = m.into_gem();
        Monitor::new(gem, MonitorConfig { alert_after: 0, clear_after: 2 });
    }
}
