//! Binary wire protocol for the network ingress.
//!
//! Every frame is length-prefixed and checksummed with the workspace's
//! durability hash (FNV-1a 64, the same primitive that guards journal
//! lines and snapshot files):
//!
//! ```text
//! offset 0   u32 LE   payload length N (1 ..= negotiated max)
//! offset 4   u64 LE   fnv1a64(payload)
//! offset 12  payload  N bytes, first byte = frame kind
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns.
//! The payload layouts per kind:
//!
//! ```text
//! HELLO    = 1  [ver u8][credits u16]                    server → client
//! RECORD   = 2  [premises u64][timestamp f64][n u16]     client → server
//!               n × ([mac u64][rssi f32])
//!               optionally [trace u64][parent u64]
//! ACK      = 3  [premises u64][verdict u8][reason u8]    server → client
//!               [depth u32]
//! DECISION = 4  [premises u64][inside u8][timestamp f64] server → client
//!               [score f64][latency f64]
//! ALERT    = 5  [premises u64][raised u8][timestamp f64] server → client
//!               [consecutive u32]
//! ```
//!
//! The decoder is strict: a declared length outside bounds, a checksum
//! mismatch, an unknown kind byte, or trailing payload bytes all reject
//! the frame (and, at the ingress, the connection). Record payloads are
//! parsed directly out of the connection's read buffer — one `Vec` for
//! the readings, no intermediate serde tree — so a frame becomes a
//! shard submit call with a single copy.
//!
//! The RECORD frame's trace-context tail ([`WireTrace`]: 16 extra
//! bytes after the readings) is the protocol's one optional field: a
//! client that wants its requests traced end to end sends the trace id
//! it minted, an old client sends nothing, and both decode — the
//! reading count `n` pins the readings' extent, so the remainder is
//! unambiguously either empty (no context) or exactly one context.
//! Any other remainder is rejected, and the checksum covers the tail
//! like every other payload byte.

use std::io::{Read, Write};

use gem_core::fnv1a64;
use gem_signal::{MacAddr, Reading, SignalRecord};

use crate::supervisor::{Admission, ShedReason};

/// Protocol version advertised in the HELLO frame.
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame header size: `u32` length + `u64` checksum.
pub const HEADER_LEN: usize = 12;

/// Default ceiling on declared payload lengths. A full-size record
/// frame (u16 readings at 12 bytes each) stays well under this.
pub const MAX_FRAME_LEN: u32 = 64 * 1024;

/// Why a frame (and with it, the connection) was refused.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame — a torn header or payload.
    Torn,
    /// Declared payload length is zero or exceeds the negotiated max.
    BadLength {
        /// The length the header declared.
        declared: u32,
        /// The maximum the decoder accepts.
        max: u32,
    },
    /// Payload bytes do not hash to the header checksum.
    BadChecksum {
        /// Checksum the header carried.
        expected: u64,
        /// Checksum of the bytes actually received.
        actual: u64,
    },
    /// First payload byte names no known frame kind.
    BadKind(u8),
    /// Structurally invalid payload for its declared kind.
    BadPayload(&'static str),
    /// The underlying transport failed (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Torn => write!(f, "stream ended mid-frame"),
            WireError::BadLength { declared, max } => {
                write!(f, "declared payload length {declared} outside 1..={max}")
            }
            WireError::BadChecksum { expected, actual } => {
                write!(f, "payload checksum {actual:016x} != header {expected:016x}")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error is a read timeout rather than a protocol
    /// violation or a closed peer.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Shed reason on the wire: the fleet's [`ShedReason`] plus `Busy`,
/// which only exists at the ingress (the premises already streams
/// through another connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireShedReason {
    /// The shard queue (or the per-premises quota) was full.
    QueueFull,
    /// The fleet has shut down.
    Shutdown,
    /// The premises is not registered with the fleet.
    UnknownPremises,
    /// Another live connection already streams this premises.
    Busy,
}

impl WireShedReason {
    /// Stable wire byte for the reason.
    pub fn as_u8(self) -> u8 {
        match self {
            WireShedReason::QueueFull => 0,
            WireShedReason::Shutdown => 1,
            WireShedReason::UnknownPremises => 2,
            WireShedReason::Busy => 3,
        }
    }

    fn from_u8(b: u8) -> Result<WireShedReason, WireError> {
        Ok(match b {
            0 => WireShedReason::QueueFull,
            1 => WireShedReason::Shutdown,
            2 => WireShedReason::UnknownPremises,
            3 => WireShedReason::Busy,
            _ => return Err(WireError::BadPayload("shed reason byte")),
        })
    }
}

impl From<ShedReason> for WireShedReason {
    fn from(r: ShedReason) -> Self {
        match r {
            ShedReason::QueueFull => WireShedReason::QueueFull,
            ShedReason::Shutdown => WireShedReason::Shutdown,
            ShedReason::UnknownPremises => WireShedReason::UnknownPremises,
        }
    }
}

/// The [`Admission`] vocabulary as it travels in an ACK frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVerdict {
    /// Enqueued with an idle queue.
    Accept,
    /// Enqueued behind a backlog of `depth` records.
    Queued {
        /// Queue occupancy right after the enqueue.
        depth: u32,
    },
    /// Refused; the record was not enqueued and no DECISION will
    /// follow, so the client's credit is restored by this ACK.
    Shed(WireShedReason),
}

impl From<Admission> for WireVerdict {
    fn from(a: Admission) -> Self {
        match a {
            Admission::Accept => WireVerdict::Accept,
            Admission::Queued { depth } => {
                WireVerdict::Queued { depth: depth.min(u32::MAX as usize) as u32 }
            }
            Admission::Shed(reason) => WireVerdict::Shed(reason.into()),
        }
    }
}

/// The optional trace-context tail of a RECORD frame: the trace id the
/// client minted for this record plus its own span id, so the server's
/// spans causally chain onto the client's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTrace {
    /// Client-minted trace id (never 0 on a well-formed frame; a 0 is
    /// carried verbatim and treated as "no id" downstream).
    pub trace_id: u64,
    /// The client-side span the record departed from (0 = root).
    pub parent_span: u64,
}

/// A decoded protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Server greeting: protocol version and the connection's credit
    /// window (maximum unresolved records in flight).
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u8,
        /// Credit window granted to this connection.
        credits: u16,
    },
    /// One scan for one premises.
    Record {
        /// Target premises.
        premises_id: u64,
        /// The scan itself.
        record: SignalRecord,
        /// Optional client-minted trace context. `None` on the wire is
        /// byte-identical to the pre-tracing frame layout, so old
        /// clients and servers interoperate unchanged.
        trace: Option<WireTrace>,
    },
    /// Admission verdict for a record, sent as soon as the fleet
    /// admits or sheds it.
    Ack {
        /// Premises the acknowledged record targeted.
        premises_id: u64,
        /// The admission outcome.
        verdict: WireVerdict,
    },
    /// The monitor's decision for an admitted record. Resolves one
    /// credit.
    Decision {
        /// Premises the decision belongs to.
        premises_id: u64,
        /// True when the scan was classified in-premises.
        inside: bool,
        /// Scan timestamp (sender clock).
        timestamp_s: f64,
        /// Outlier score.
        score: f64,
        /// Server-side seconds from admission to decision.
        latency_s: f64,
    },
    /// An alert transition (raised or cleared) for a premises.
    Alert {
        /// Premises the alert belongs to.
        premises_id: u64,
        /// True for raised, false for cleared.
        raised: bool,
        /// Timestamp of the scan that transitioned the alert.
        timestamp_s: f64,
        /// Consecutive outside decisions at raise time (0 on clear).
        consecutive_out: u32,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_RECORD: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_DECISION: u8 = 4;
const KIND_ALERT: u8 = 5;

/// Appends the full wire encoding of `frame` (header + payload) to
/// `buf` and returns the number of bytes appended.
pub fn encode(frame: &Frame, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    // Reserve the header; the payload is built in place behind it.
    buf.extend_from_slice(&[0u8; HEADER_LEN]);
    match frame {
        Frame::Hello { version, credits } => {
            buf.push(KIND_HELLO);
            buf.push(*version);
            buf.extend_from_slice(&credits.to_le_bytes());
        }
        Frame::Record { premises_id, record, trace } => {
            buf.push(KIND_RECORD);
            buf.extend_from_slice(&premises_id.to_le_bytes());
            buf.extend_from_slice(&record.timestamp_s.to_le_bytes());
            let n = u16::try_from(record.readings.len()).expect("record with > u16::MAX readings");
            buf.extend_from_slice(&n.to_le_bytes());
            for r in &record.readings {
                buf.extend_from_slice(&r.mac.raw().to_le_bytes());
                buf.extend_from_slice(&r.rssi.to_le_bytes());
            }
            if let Some(t) = trace {
                buf.extend_from_slice(&t.trace_id.to_le_bytes());
                buf.extend_from_slice(&t.parent_span.to_le_bytes());
            }
        }
        Frame::Ack { premises_id, verdict } => {
            buf.push(KIND_ACK);
            buf.extend_from_slice(&premises_id.to_le_bytes());
            let (v, reason, depth) = match verdict {
                WireVerdict::Accept => (0u8, 0u8, 0u32),
                WireVerdict::Queued { depth } => (1, 0, *depth),
                WireVerdict::Shed(r) => (2, r.as_u8(), 0),
            };
            buf.push(v);
            buf.push(reason);
            buf.extend_from_slice(&depth.to_le_bytes());
        }
        Frame::Decision { premises_id, inside, timestamp_s, score, latency_s } => {
            buf.push(KIND_DECISION);
            buf.extend_from_slice(&premises_id.to_le_bytes());
            buf.push(u8::from(*inside));
            buf.extend_from_slice(&timestamp_s.to_le_bytes());
            buf.extend_from_slice(&score.to_le_bytes());
            buf.extend_from_slice(&latency_s.to_le_bytes());
        }
        Frame::Alert { premises_id, raised, timestamp_s, consecutive_out } => {
            buf.push(KIND_ALERT);
            buf.extend_from_slice(&premises_id.to_le_bytes());
            buf.push(u8::from(*raised));
            buf.extend_from_slice(&timestamp_s.to_le_bytes());
            buf.extend_from_slice(&consecutive_out.to_le_bytes());
        }
    }
    let payload = &buf[start + HEADER_LEN..];
    let len = payload.len() as u32;
    let checksum = fnv1a64(payload);
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    buf[start + 4..start + HEADER_LEN].copy_from_slice(&checksum.to_le_bytes());
    buf.len() - start
}

/// Writes one frame to `w`, reusing `buf` as scratch. Returns the
/// number of bytes written (for transmit accounting).
pub fn write_frame(w: &mut impl Write, frame: &Frame, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    buf.clear();
    let n = encode(frame, buf);
    w.write_all(buf)?;
    Ok(n)
}

/// A strict little-endian payload cursor.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.i.checked_add(n).ok_or(WireError::BadPayload(what))?;
        if end > self.b.len() {
            return Err(WireError::BadPayload(what));
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload("trailing bytes"))
        }
    }
}

/// Decodes one payload (checksum already verified) into a [`Frame`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cur { b: payload, i: 0 };
    let kind = c.u8("kind byte")?;
    let frame = match kind {
        KIND_HELLO => {
            Frame::Hello { version: c.u8("hello version")?, credits: c.u16("hello credits")? }
        }
        KIND_RECORD => {
            let premises_id = c.u64("record premises")?;
            let timestamp_s = c.f64("record timestamp")?;
            let n = c.u16("record reading count")? as usize;
            // Cheap structural bound before allocating: each reading is
            // 12 bytes, and after them the payload either ends (an
            // untraced frame — the pre-tracing layout) or carries
            // exactly one 16-byte trace context. Anything else rejects.
            let rest = payload.len() - c.i;
            let has_trace = match rest.checked_sub(n * 12) {
                Some(0) => false,
                Some(16) => true,
                _ => return Err(WireError::BadPayload("record reading bytes")),
            };
            let mut record = SignalRecord { timestamp_s, readings: Vec::with_capacity(n) };
            for _ in 0..n {
                let mac = c.u64("reading mac")?;
                if mac & !MacAddr::MASK != 0 {
                    return Err(WireError::BadPayload("mac above 48 bits"));
                }
                let rssi = c.f32("reading rssi")?;
                record.readings.push(Reading { mac: MacAddr::from_raw(mac), rssi });
            }
            let trace = if has_trace {
                Some(WireTrace {
                    trace_id: c.u64("trace id")?,
                    parent_span: c.u64("trace parent span")?,
                })
            } else {
                None
            };
            Frame::Record { premises_id, record, trace }
        }
        KIND_ACK => {
            let premises_id = c.u64("ack premises")?;
            let v = c.u8("ack verdict")?;
            let reason = c.u8("ack reason")?;
            let depth = c.u32("ack depth")?;
            let verdict = match v {
                0 => WireVerdict::Accept,
                1 => WireVerdict::Queued { depth },
                2 => WireVerdict::Shed(WireShedReason::from_u8(reason)?),
                _ => return Err(WireError::BadPayload("ack verdict byte")),
            };
            Frame::Ack { premises_id, verdict }
        }
        KIND_DECISION => Frame::Decision {
            premises_id: c.u64("decision premises")?,
            inside: c.u8("decision label")? != 0,
            timestamp_s: c.f64("decision timestamp")?,
            score: c.f64("decision score")?,
            latency_s: c.f64("decision latency")?,
        },
        KIND_ALERT => Frame::Alert {
            premises_id: c.u64("alert premises")?,
            raised: c.u8("alert state")? != 0,
            timestamp_s: c.f64("alert timestamp")?,
            consecutive_out: c.u32("alert consecutive")?,
        },
        other => return Err(WireError::BadKind(other)),
    };
    c.done()?;
    Ok(frame)
}

/// Reads one frame from `r`, filling `buf` with the payload bytes.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary); a stream that ends inside a header or payload is a torn
/// frame ([`WireError::Torn`]). The declared length is validated
/// against `max_len` *before* any payload byte is read or buffered, so
/// an adversarial length can neither allocate nor stall.
pub fn read_frame(
    r: &mut impl Read,
    max_len: u32,
    buf: &mut Vec<u8>,
) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Torn),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let expected = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    if len == 0 || len > max_len {
        return Err(WireError::BadLength { declared: len, max: max_len });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    if let Err(e) = r.read_exact(buf) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Torn
        } else {
            WireError::Io(e)
        });
    }
    let actual = fnv1a64(buf);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    decode_payload(buf).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        encode(&frame, &mut wire);
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let back = read_frame(&mut cursor, MAX_FRAME_LEN, &mut buf).unwrap().unwrap();
        assert_eq!(back, frame);
        // And a clean EOF right after.
        assert!(read_frame(&mut cursor, MAX_FRAME_LEN, &mut buf).unwrap().is_none());
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Frame::Hello { version: WIRE_VERSION, credits: 32 });
        roundtrip(Frame::Record {
            premises_id: 42,
            record: SignalRecord::from_pairs(
                12.5,
                [(MacAddr::from_raw(0xA1B2C3), -47.0), (MacAddr::from_raw(0x0F), -80.5)],
            ),
            trace: None,
        });
        roundtrip(Frame::Record {
            premises_id: 42,
            record: SignalRecord::from_pairs(12.5, [(MacAddr::from_raw(0xA1B2C3), -47.0)]),
            trace: Some(WireTrace { trace_id: 0xDEAD_BEEF_CAFE_F00D, parent_span: 7 }),
        });
        roundtrip(Frame::Ack { premises_id: 7, verdict: WireVerdict::Accept });
        roundtrip(Frame::Ack { premises_id: 7, verdict: WireVerdict::Queued { depth: 9 } });
        roundtrip(Frame::Ack {
            premises_id: 7,
            verdict: WireVerdict::Shed(WireShedReason::UnknownPremises),
        });
        roundtrip(Frame::Decision {
            premises_id: 3,
            inside: true,
            timestamp_s: 99.0,
            score: 0.25,
            latency_s: 0.001,
        });
        roundtrip(Frame::Alert {
            premises_id: 3,
            raised: true,
            timestamp_s: 7.0,
            consecutive_out: 3,
        });
    }

    #[test]
    fn empty_record_roundtrips() {
        roundtrip(Frame::Record { premises_id: 1, record: SignalRecord::new(0.0), trace: None });
        roundtrip(Frame::Record {
            premises_id: 1,
            record: SignalRecord::new(0.0),
            trace: Some(WireTrace { trace_id: 1, parent_span: 0 }),
        });
    }

    /// A RECORD payload hand-built in the pre-tracing layout (readings
    /// end the payload, no trace tail) must decode to `trace: None` —
    /// old clients keep working against a tracing-aware server.
    #[test]
    fn old_record_layout_without_trace_field_decodes() {
        let mut payload = vec![KIND_RECORD];
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&1.5f64.to_le_bytes());
        payload.extend_from_slice(&2u16.to_le_bytes());
        for (mac, rssi) in [(0xAAu64, -50.0f32), (0xBB, -71.5)] {
            payload.extend_from_slice(&mac.to_le_bytes());
            payload.extend_from_slice(&rssi.to_le_bytes());
        }
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut buf = Vec::new();
        let frame =
            read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf).unwrap().unwrap();
        match frame {
            Frame::Record { premises_id, record, trace } => {
                assert_eq!(premises_id, 9);
                assert_eq!(record.readings.len(), 2);
                assert_eq!(trace, None);
            }
            other => panic!("expected a record, got {other:?}"),
        }
    }

    /// A trace tail of the wrong size (neither absent nor 16 bytes)
    /// must reject even with a valid checksum.
    #[test]
    fn wrong_size_trace_tail_is_rejected() {
        for extra in [1usize, 8, 15, 17, 24] {
            let mut payload = vec![KIND_RECORD];
            payload.extend_from_slice(&9u64.to_le_bytes());
            payload.extend_from_slice(&1.5f64.to_le_bytes());
            payload.extend_from_slice(&0u16.to_le_bytes());
            payload.extend(std::iter::repeat(0xEE).take(extra));
            let mut wire = Vec::new();
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
            wire.extend_from_slice(&payload);
            let mut buf = Vec::new();
            let err = read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf)
                .unwrap_err();
            assert!(
                matches!(err, WireError::BadPayload("record reading bytes")),
                "{extra} extra bytes: {err}"
            );
        }
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut wire = Vec::new();
        encode(&Frame::Ack { premises_id: 1, verdict: WireVerdict::Accept }, &mut wire);
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut buf = Vec::new();
        let err = read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf).unwrap_err();
        assert!(matches!(err, WireError::BadChecksum { .. }), "{err}");
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_reading() {
        let mut wire = vec![0u8; HEADER_LEN];
        wire[0..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut buf = Vec::new();
        let err = read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf).unwrap_err();
        assert!(
            matches!(err, WireError::BadLength { declared, .. } if declared == MAX_FRAME_LEN + 1)
        );
    }

    #[test]
    fn zero_length_is_rejected() {
        let wire = vec![0u8; HEADER_LEN];
        let mut buf = Vec::new();
        let err = read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf).unwrap_err();
        assert!(matches!(err, WireError::BadLength { declared: 0, .. }));
    }

    #[test]
    fn truncation_anywhere_is_torn() {
        let mut wire = Vec::new();
        encode(
            &Frame::Record {
                premises_id: 9,
                record: SignalRecord::from_pairs(1.0, [(MacAddr::from_raw(5), -60.0)]),
                trace: None,
            },
            &mut wire,
        );
        for cut in 1..wire.len() {
            let mut buf = Vec::new();
            let err = read_frame(&mut std::io::Cursor::new(&wire[..cut]), MAX_FRAME_LEN, &mut buf)
                .unwrap_err();
            assert!(matches!(err, WireError::Torn), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build an ACK payload with one extra byte and a valid
        // checksum: the checksum passes, the structure must not.
        let mut payload = vec![KIND_ACK];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&[0, 0]);
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(0xEE);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut buf = Vec::new();
        let err = read_frame(&mut std::io::Cursor::new(wire), MAX_FRAME_LEN, &mut buf).unwrap_err();
        assert!(matches!(err, WireError::BadPayload("trailing bytes")), "{err}");
    }
}
