//! Network ingress: the TCP front door of a [`Fleet`].
//!
//! One accept-loop thread, one reader thread per connection, and one
//! event-router thread shared by all connections. A client speaks the
//! [`crate::wire`] protocol: the server greets with HELLO (carrying the
//! connection's credit window), the client streams RECORD frames, and
//! the server answers each record twice — an ACK at admission (the
//! fleet's [`Admission`] verdict verbatim) and, for admitted records, a
//! DECISION once the shard has classified the scan. Alert transitions
//! ride along as ALERT frames.
//!
//! # Flow control
//!
//! The HELLO credit window `W` is `min(configured window, per-premises
//! admission quota)`: a client that keeps at most `W` records
//! unresolved (no DECISION yet, no shed ACK) can never overrun its
//! premises' quota, so a well-behaved device sees zero sheds by
//! construction. Shed ACKs echo the reason (queue full, shutdown,
//! unknown premises, or busy) and restore the credit immediately —
//! a shed record never produces a DECISION.
//!
//! # Failure handling
//!
//! A torn frame, checksum mismatch, oversized declared length, unknown
//! frame kind, or read timeout rejects *that connection only*: the
//! socket is closed, the premises routes it held are released, a
//! `gem_ingress_rejects_total{reason}` counter ticks, and the listener
//! and every other connection keep running. Decisions for records a
//! dead connection left behind are counted as orphans and dropped.
//!
//! # Premises ownership
//!
//! Decisions are matched to records by per-premises FIFO order, so a
//! premises may stream through at most one connection at a time: the
//! first RECORD for a premises claims it, and other connections get
//! `Shed(Busy)` until the owner disconnects.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use gem_obs::{SpanContext, TraceEvent};
use parking_lot::Mutex;

use crate::fleet::{Fleet, FleetSubmitter};
use crate::monitor::Event;
use crate::obs::IngressObs;
use crate::shard::FleetEvent;
use crate::supervisor::Admission;
use crate::wire::{self, Frame, WireError, WireShedReason, WireVerdict, WIRE_VERSION};

/// Tuning knobs of the network ingress.
#[derive(Clone, Debug)]
pub struct IngressConfig {
    /// Per-connection credit window cap. The advertised window is the
    /// minimum of this and the fleet's per-premises admission quota.
    pub credit_window: u16,
    /// Per-connection read timeout: a client silent for this long is
    /// disconnected (reason `timeout`).
    pub read_timeout: Duration,
    /// Ceiling on declared frame payload lengths.
    pub max_frame_len: u32,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            credit_window: 64,
            read_timeout: Duration::from_secs(30),
            max_frame_len: wire::MAX_FRAME_LEN,
        }
    }
}

/// The write half of one connection, shared between its reader thread
/// (ACKs) and the router thread (DECISIONs/ALERTs). Each frame is
/// encoded into a scratch buffer and written under the lock in one
/// `write_all`, so concurrent writers never interleave frame bytes.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, frame: &Frame, obs: &IngressObs) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(64);
        wire::encode(frame, &mut buf);
        let mut stream = self.stream.lock();
        stream.write_all(&buf)?;
        obs.bytes_tx.add(buf.len() as u64);
        Ok(())
    }
}

/// State shared by the accept loop, the router, and every connection.
struct Shared {
    stop: AtomicBool,
    submitter: FleetSubmitter,
    credits: u16,
    read_timeout: Duration,
    max_frame_len: u32,
    /// premises → the connection currently streaming it.
    routes: Mutex<HashMap<u64, Arc<ConnWriter>>>,
    /// Live connections (socket clones), for shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    obs: IngressObs,
}

/// A running TCP ingress in front of a fleet. Dropping it closes the
/// listener and every connection, then joins all threads; the fleet
/// itself keeps running.
pub struct IngressServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl IngressServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving the fleet. Takes the fleet's event stream — after
    /// this, [`Fleet::events`] observes a disconnected channel; the
    /// ingress forwards every decision and alert to the connection that
    /// submitted the corresponding records.
    pub fn bind(
        addr: &str,
        fleet: &mut Fleet,
        cfg: IngressConfig,
    ) -> std::io::Result<IngressServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let credits = (cfg.credit_window as usize).min(fleet.admission_quota()).max(1) as u16;
        let obs = IngressObs::register(&fleet.registry(), fleet.obs_options().enabled);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            submitter: fleet.submitter(),
            credits,
            read_timeout: cfg.read_timeout,
            max_frame_len: cfg.max_frame_len,
            routes: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            obs,
        });
        let events = fleet.take_events();
        let router = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gem-ingress-router".into())
                .spawn(move || route_events(&shared, &events))?
        };
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new().name("gem-ingress-accept".into()).spawn(move || {
                let next_conn = AtomicU64::new(1);
                while !shared.stop.load(Ordering::Acquire) {
                    let Ok((stream, _)) = listener.accept() else { continue };
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().insert(conn_id, clone);
                    }
                    let shared2 = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name(format!("gem-ingress-conn-{conn_id}"))
                        .spawn(move || handle_conn(&shared2, stream, conn_id));
                    let mut threads = conn_threads.lock();
                    // Reap finished readers so a long-lived listener
                    // doesn't accumulate dead handles.
                    let mut live = Vec::with_capacity(threads.len() + 1);
                    for h in threads.drain(..) {
                        if h.is_finished() {
                            let _ = h.join();
                        } else {
                            live.push(h);
                        }
                    }
                    *threads = live;
                    if let Ok(handle) = spawned {
                        threads.push(handle);
                    }
                }
            })?
        };
        Ok(IngressServer { addr, shared, accept: Some(accept), router: Some(router), conn_threads })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for IngressServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocked accept() so the thread observes `stop`.
        let _ = TcpStream::connect(self.addr);
        // Knock every live connection loose; their readers exit on the
        // resulting error/EOF.
        for (_, stream) in self.shared.conns.lock().iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.conn_threads.lock().drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
    }
}

/// Forwards fleet events to the connections that own their premises.
fn route_events(shared: &Shared, events: &Receiver<FleetEvent>) {
    loop {
        let event = match events.recv_timeout(Duration::from_millis(100)) {
            Ok(e) => e,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let FleetEvent { premises_id, event, latency_s, trace } = event;
        let frame = match event {
            Event::Decision { timestamp_s, label, score } => Frame::Decision {
                premises_id,
                inside: label.is_in(),
                timestamp_s,
                score,
                latency_s,
            },
            Event::AlertRaised { timestamp_s, consecutive_out } => Frame::Alert {
                premises_id,
                raised: true,
                timestamp_s,
                consecutive_out: consecutive_out.min(u32::MAX as usize) as u32,
            },
            Event::AlertCleared { timestamp_s } => {
                Frame::Alert { premises_id, raised: false, timestamp_s, consecutive_out: 0 }
            }
        };
        let writer = shared.routes.lock().get(&premises_id).cloned();
        match writer {
            Some(writer) => {
                let t = Instant::now();
                if writer.send(&frame, &shared.obs).is_ok() {
                    let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    if shared.obs.enabled {
                        shared.obs.reply_seconds.record(ns);
                    }
                    // The record's span ended at the shard; the reply
                    // write is the trace's final stage, joined to the
                    // span by trace id (`gem trace` does the join).
                    if trace != 0 {
                        shared.submitter.trace(
                            premises_id,
                            TraceEvent::new("span_ack")
                                .with("trace", SpanContext::format_id(trace))
                                .with("premises", premises_id)
                                .with("ack_ns", ns),
                        );
                    }
                } else {
                    // The connection is dying; its reader unregisters
                    // the route. The decision itself is safe — the
                    // model updated and the epoch was journaled.
                    shared.obs.orphan_events.inc();
                }
            }
            None => shared.obs.orphan_events.inc(),
        }
    }
}

/// Reads frames from one connection until EOF, a protocol violation,
/// or shutdown.
fn handle_conn(shared: &Shared, stream: TcpStream, conn_id: u64) {
    shared.obs.connections.inc();
    shared.obs.connections_open.add(1);
    let close_reason = serve_conn(shared, stream);
    // Shutdown knocks sockets loose on purpose; don't count those
    // errors as client misbehavior.
    if let Some(reason) = close_reason {
        if !shared.stop.load(Ordering::Acquire) {
            shared.obs.reject(reason).inc();
        }
    }
    // Release every premises this connection owned and forget the
    // socket clone.
    let writer_gone = shared.conns.lock().remove(&conn_id);
    drop(writer_gone);
    shared.obs.connections_open.add(-1);
}

/// The per-connection protocol loop. Returns the reject reason, or
/// `None` for a clean close.
fn serve_conn(shared: &Shared, stream: TcpStream) -> Option<&'static str> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter { stream: Mutex::new(clone) }),
        Err(_) => return Some("io"),
    };
    if writer
        .send(&Frame::Hello { version: WIRE_VERSION, credits: shared.credits }, &shared.obs)
        .is_err()
    {
        return Some("io");
    }
    let mut owned: Vec<u64> = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let reason = loop {
        match wire::read_frame(&mut reader, shared.max_frame_len, &mut buf) {
            Ok(None) => break None,
            Ok(Some(Frame::Record { premises_id, record, trace })) => {
                shared.obs.bytes_rx.add((wire::HEADER_LEN + buf.len()) as u64);
                shared.obs.frames.inc();
                let t = Instant::now();
                // Claim the premises on first use; FIFO decision
                // matching only works with a single submitting
                // connection per premises.
                if !owned.contains(&premises_id) {
                    let mut routes = shared.routes.lock();
                    if routes.contains_key(&premises_id) {
                        drop(routes);
                        shared.obs.busy_sheds.inc();
                        let ack = Frame::Ack {
                            premises_id,
                            verdict: WireVerdict::Shed(WireShedReason::Busy),
                        };
                        if writer.send(&ack, &shared.obs).is_err() {
                            break Some("io");
                        }
                        continue;
                    }
                    routes.insert(premises_id, Arc::clone(&writer));
                    drop(routes);
                    owned.push(premises_id);
                }
                let admission = shared.submitter.submit_traced(premises_id, record, t, trace);
                match admission {
                    Admission::Accept => shared.obs.accepts.inc(),
                    Admission::Queued { .. } => shared.obs.queued.inc(),
                    Admission::Shed(_) => shared.obs.sheds.inc(),
                }
                let ack = Frame::Ack { premises_id, verdict: admission.into() };
                if writer.send(&ack, &shared.obs).is_err() {
                    break Some("io");
                }
                if shared.obs.enabled {
                    shared
                        .obs
                        .ack_seconds
                        .record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
            }
            // Only clients send records; everything else is a
            // protocol violation.
            Ok(Some(_)) => break Some("bad_frame"),
            Err(WireError::Torn) => break Some("torn_frame"),
            Err(WireError::BadLength { .. }) => break Some("oversize"),
            Err(WireError::BadChecksum { .. }) => break Some("bad_checksum"),
            Err(WireError::BadKind(_)) | Err(WireError::BadPayload(_)) => break Some("bad_frame"),
            Err(e @ WireError::Io(_)) => break Some(if e.is_timeout() { "timeout" } else { "io" }),
        }
    };
    if !owned.is_empty() {
        let mut routes = shared.routes.lock();
        for premises in owned {
            routes.remove(&premises);
        }
    }
    reason
}
