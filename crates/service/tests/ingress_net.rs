//! Adversarial integration tests for the TCP ingress: real sockets
//! against a live fleet. The contract under test is the module doc of
//! `gem_service::ingress` — admitted records always produce exactly one
//! DECISION, protocol violations (torn frames, bad checksums, oversized
//! lengths, silence, server-only frames) reject *that connection only*,
//! and the listener plus every other connection keep serving.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use gem_core::{Gem, GemConfig, GemSnapshot};
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::wire::{self, Frame, WireShedReason, WireVerdict, MAX_FRAME_LEN};
use gem_service::{Fleet, FleetConfig, IngressConfig, IngressServer, Monitor, MonitorConfig};
use gem_signal::SignalRecord;

/// One trained model (as restorable JSON) plus held-out records,
/// fitted once for the whole test binary.
struct Fixture {
    snapshot_json: String,
    stream: Vec<SignalRecord>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 60.0;
        cfg.n_test_in = 6;
        cfg.n_test_out = 6;
        let ds = Scenario::build(cfg).generate();
        let gem = Gem::fit(GemConfig::default(), &ds.train);
        Fixture {
            snapshot_json: GemSnapshot::capture(&gem).to_json().unwrap(),
            stream: ds.test.iter().map(|t| t.record.clone()).collect(),
        }
    })
}

/// A fleet with the given premises ids behind a freshly bound ingress.
fn serve(premises: &[u64], icfg: IngressConfig) -> (Fleet, IngressServer) {
    let fx = fixture();
    let monitors: Vec<(u64, Monitor)> = premises
        .iter()
        .map(|&p| {
            let gem = GemSnapshot::from_json(&fx.snapshot_json).unwrap().restore().unwrap();
            (p, Monitor::new(gem, MonitorConfig::default()))
        })
        .collect();
    let mut fleet = Fleet::spawn(
        monitors,
        FleetConfig { shards: 2, queue_per_shard: 64, ..FleetConfig::default() },
    )
    .unwrap();
    let server = IngressServer::bind("127.0.0.1:0", &mut fleet, icfg).unwrap();
    (fleet, server)
}

/// A test client: HELLO already consumed, frame-level send/recv with a
/// read timeout so a wedged server fails the test instead of hanging it.
struct Client {
    writer: TcpStream,
    reader: std::io::BufReader<TcpStream>,
    buf: Vec<u8>,
    wbuf: Vec<u8>,
    credits: u16,
    /// Frames read past while waiting for a specific kind. The ACK
    /// (connection thread) and the DECISION (router thread) race to the
    /// socket, so a DECISION may legitimately arrive before its ACK —
    /// `recv_until` must keep it for the next caller, not discard it.
    stash: std::collections::VecDeque<Frame>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let sock = TcpStream::connect(addr).unwrap();
        sock.set_nodelay(true).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let writer = sock.try_clone().unwrap();
        let mut client = Client {
            writer,
            reader: std::io::BufReader::new(sock),
            buf: Vec::new(),
            wbuf: Vec::new(),
            credits: 0,
            stash: std::collections::VecDeque::new(),
        };
        match client.recv() {
            Ok(Some(Frame::Hello { version, credits })) => {
                assert_eq!(version, wire::WIRE_VERSION);
                assert!(credits >= 1, "advertised window must be at least 1");
                client.credits = credits;
            }
            other => panic!("expected HELLO, got {other:?}"),
        }
        client
    }

    fn send(&mut self, frame: &Frame) -> std::io::Result<usize> {
        wire::write_frame(&mut self.writer, frame, &mut self.wbuf)
    }

    fn send_record(&mut self, premises_id: u64, record: SignalRecord) -> std::io::Result<usize> {
        self.send(&Frame::Record { premises_id, record, trace: None })
    }

    fn recv(&mut self) -> Result<Option<Frame>, wire::WireError> {
        wire::read_frame(&mut self.reader, MAX_FRAME_LEN, &mut self.buf)
    }

    /// Reads until a frame matching `want` arrives (checking stashed
    /// frames first); panics on EOF. Non-matching frames are stashed
    /// for later `recv_until` calls — the server's two writer threads
    /// give no cross-kind ordering guarantee.
    fn recv_until(&mut self, want: impl Fn(&Frame) -> bool) -> Frame {
        if let Some(i) = self.stash.iter().position(&want) {
            return self.stash.remove(i).unwrap();
        }
        loop {
            match self.recv() {
                Ok(Some(frame)) if want(&frame) => return frame,
                Ok(Some(frame)) => self.stash.push_back(frame),
                other => panic!("connection ended while waiting: {other:?}"),
            }
        }
    }

    /// True once the server has dropped this connection: the next reads
    /// yield EOF or an error instead of frames.
    fn is_closed(&mut self) -> bool {
        matches!(self.recv(), Ok(None) | Err(_))
    }
}

fn record(i: usize) -> SignalRecord {
    let fx = fixture();
    fx.stream[i % fx.stream.len()].clone()
}

/// A counter's value in the registry's Prometheus rendering, summed
/// over label sets containing `needle`.
fn counter_sum(fleet: &Fleet, name: &str, needle: &str) -> f64 {
    fleet
        .registry()
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with(name) && l.contains(needle))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

#[test]
fn admitted_records_round_trip_to_decisions() {
    let (fleet, server) = serve(&[1, 2], IngressConfig::default());
    let mut a = Client::connect(server.local_addr());
    let mut b = Client::connect(server.local_addr());

    for i in 0..5 {
        a.send_record(1, record(i)).unwrap();
        b.send_record(2, record(i + 1)).unwrap();
        // Admission verdict comes back as an ACK, never a shed (the
        // window is never exceeded here).
        for c in [&mut a, &mut b] {
            let ack = c.recv_until(|f| matches!(f, Frame::Ack { .. }));
            let Frame::Ack { verdict, .. } = ack else { unreachable!() };
            assert!(
                matches!(verdict, WireVerdict::Accept | WireVerdict::Queued { .. }),
                "in-window record must be admitted, got {verdict:?}"
            );
        }
        // Exactly one DECISION per admitted record, tagged with the
        // right premises.
        let d = a.recv_until(|f| matches!(f, Frame::Decision { .. }));
        assert!(matches!(d, Frame::Decision { premises_id: 1, .. }), "got {d:?}");
        let d = b.recv_until(|f| matches!(f, Frame::Decision { .. }));
        assert!(matches!(d, Frame::Decision { premises_id: 2, .. }), "got {d:?}");
    }

    assert_eq!(counter_sum(&fleet, "gem_ingress_frames_total", "record"), 10.0);
    assert_eq!(
        counter_sum(&fleet, "gem_ingress_records_total", "accept")
            + counter_sum(&fleet, "gem_ingress_records_total", "queued"),
        10.0
    );
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn unknown_premises_shed_is_echoed_on_the_wire() {
    let (fleet, server) = serve(&[1], IngressConfig::default());
    let mut c = Client::connect(server.local_addr());
    c.send_record(999, record(0)).unwrap();
    let ack = c.recv_until(|f| matches!(f, Frame::Ack { .. }));
    assert!(
        matches!(
            ack,
            Frame::Ack {
                premises_id: 999,
                verdict: WireVerdict::Shed(WireShedReason::UnknownPremises)
            }
        ),
        "got {ack:?}"
    );
    // The connection itself stays healthy: a known premises still works.
    c.send_record(1, record(0)).unwrap();
    c.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn torn_frame_kills_the_connection_not_the_listener() {
    let (fleet, server) = serve(&[1], IngressConfig::default());

    // A client that dies mid-header.
    let mut encoded = Vec::new();
    wire::encode(&Frame::Record { premises_id: 1, record: record(0), trace: None }, &mut encoded);
    {
        let mut torn = Client::connect(server.local_addr());
        torn.writer.write_all(&encoded[..7]).unwrap();
        drop(torn); // half a header, then FIN
    }

    // The listener survives and fresh connections stream normally.
    let mut healthy = Client::connect(server.local_addr());
    healthy.send_record(1, record(1)).unwrap();
    healthy.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));

    // The tear was counted against the dead connection only. (Poll: the
    // reject is recorded by the reader thread after the FIN arrives.)
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counter_sum(&fleet, "gem_ingress_rejects_total", "torn_frame") < 1.0 {
        assert!(std::time::Instant::now() < deadline, "torn_frame reject never counted");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn bad_checksum_rejects_sender_and_spares_other_connections() {
    let (fleet, server) = serve(&[1, 2], IngressConfig::default());

    // An honest client mid-conversation...
    let mut honest = Client::connect(server.local_addr());
    honest.send_record(1, record(0)).unwrap();
    honest.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));

    // ...and a corrupt one: valid header, payload bits flipped.
    let mut corrupt = Client::connect(server.local_addr());
    let mut encoded = Vec::new();
    wire::encode(&Frame::Record { premises_id: 2, record: record(1), trace: None }, &mut encoded);
    let last = encoded.len() - 1;
    encoded[last] ^= 0x40;
    corrupt.writer.write_all(&encoded).unwrap();
    assert!(corrupt.is_closed(), "corrupt connection must be dropped");

    // The honest connection never noticed.
    honest.send_record(1, record(2)).unwrap();
    honest.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));
    assert_eq!(counter_sum(&fleet, "gem_ingress_rejects_total", "bad_checksum"), 1.0);
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn oversized_declared_length_is_rejected_without_buffering() {
    let (fleet, server) = serve(&[1], IngressConfig::default());
    let mut c = Client::connect(server.local_addr());
    // A header declaring a payload far beyond the ceiling; no payload
    // ever follows — the server must reject on the declaration alone.
    let mut header = Vec::new();
    header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    header.extend_from_slice(&0u64.to_le_bytes());
    c.writer.write_all(&header).unwrap();
    assert!(c.is_closed(), "oversized declaration must drop the connection");
    assert_eq!(counter_sum(&fleet, "gem_ingress_rejects_total", "oversize"), 1.0);
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn silent_client_is_disconnected_on_read_timeout() {
    let icfg = IngressConfig { read_timeout: Duration::from_millis(150), ..Default::default() };
    let (fleet, server) = serve(&[1], icfg);
    let mut c = Client::connect(server.local_addr());
    // Say nothing; the server must hang up on its own.
    assert!(c.is_closed(), "silent connection must be dropped");
    assert_eq!(counter_sum(&fleet, "gem_ingress_rejects_total", "timeout"), 1.0);
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn server_only_frames_from_clients_are_protocol_violations() {
    let (fleet, server) = serve(&[1], IngressConfig::default());
    let mut c = Client::connect(server.local_addr());
    c.send(&Frame::Hello { version: wire::WIRE_VERSION, credits: 1 }).unwrap();
    assert!(c.is_closed(), "clients may only send RECORD frames");
    assert_eq!(counter_sum(&fleet, "gem_ingress_rejects_total", "bad_frame"), 1.0);
    drop(server);
    fleet.shutdown().unwrap();
}

#[test]
fn premises_is_single_owner_with_busy_shed_until_release() {
    let (fleet, server) = serve(&[1], IngressConfig::default());

    // First connection claims premises 1.
    let mut owner = Client::connect(server.local_addr());
    owner.send_record(1, record(0)).unwrap();
    owner.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));

    // A second connection gets Busy, not a decision.
    let mut rival = Client::connect(server.local_addr());
    rival.send_record(1, record(1)).unwrap();
    let ack = rival.recv_until(|f| matches!(f, Frame::Ack { .. }));
    assert!(
        matches!(
            ack,
            Frame::Ack { premises_id: 1, verdict: WireVerdict::Shed(WireShedReason::Busy) }
        ),
        "got {ack:?}"
    );

    // Once the owner leaves, the premises is claimable again. The
    // release happens as the owner's reader exits, so retry briefly.
    drop(owner);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        rival.send_record(1, record(2)).unwrap();
        let ack = rival.recv_until(|f| matches!(f, Frame::Ack { .. }));
        let Frame::Ack { verdict, .. } = ack else { unreachable!() };
        match verdict {
            WireVerdict::Shed(WireShedReason::Busy) => {
                assert!(std::time::Instant::now() < deadline, "premises never released");
                std::thread::sleep(Duration::from_millis(20));
            }
            WireVerdict::Accept | WireVerdict::Queued { .. } => break,
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    rival.recv_until(|f| matches!(f, Frame::Decision { premises_id: 1, .. }));
    drop(server);
    fleet.shutdown().unwrap();
}
