//! Property tests for the wire codec: every frame the protocol can
//! express survives an encode→decode round trip bit-for-bit, and no
//! single-byte corruption or truncation of an encoded frame is ever
//! accepted (or panics the decoder) — the framing must fail closed.

use std::io::Cursor;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use gem_service::wire::{self, Frame, WireShedReason, WireTrace, WireVerdict, MAX_FRAME_LEN};
use gem_signal::{MacAddr, SignalRecord};

/// Generates an arbitrary frame of any kind, with adversarially plain
/// and extreme field values (NaN scores included — the codec carries
/// bits, not semantics).
struct FrameStrategy;

impl Strategy for FrameStrategy {
    type Value = Frame;

    fn sample(&self, rng: &mut StdRng) -> Frame {
        let f64s = [0.0, -1.5, 1e300, f64::NAN, f64::INFINITY, 42.25];
        let f = |rng: &mut StdRng| f64s[rng.random_range(0..f64s.len())];
        match rng.random_range(0..5u32) {
            0 => Frame::Hello {
                version: rng.random_range(0..=255u32) as u8,
                credits: rng.random_range(0..=u16::MAX as u32) as u16,
            },
            1 => {
                let n = rng.random_range(0..40usize);
                let pairs: Vec<(MacAddr, f32)> = (0..n)
                    .map(|_| {
                        (
                            MacAddr::from_raw(rng.random_range(0..=MacAddr::MASK)),
                            rng.random_range(-120.0..0.0f64) as f32,
                        )
                    })
                    .collect();
                // Half the records carry the optional trace-context
                // tail, half use the pre-tracing layout.
                let trace = if rng.random_range(0..2u32) == 1 {
                    Some(WireTrace {
                        trace_id: rng.random_range(0..=u64::MAX),
                        parent_span: rng.random_range(0..=u64::MAX),
                    })
                } else {
                    None
                };
                Frame::Record {
                    premises_id: rng.random_range(0..=u64::MAX),
                    record: SignalRecord::from_pairs(f(rng), pairs),
                    trace,
                }
            }
            2 => {
                let verdict = match rng.random_range(0..3u32) {
                    0 => WireVerdict::Accept,
                    1 => WireVerdict::Queued { depth: rng.random_range(0..=u32::MAX) },
                    _ => WireVerdict::Shed(
                        [
                            WireShedReason::QueueFull,
                            WireShedReason::Shutdown,
                            WireShedReason::UnknownPremises,
                            WireShedReason::Busy,
                        ][rng.random_range(0..4usize)],
                    ),
                };
                Frame::Ack { premises_id: rng.random_range(0..=u64::MAX), verdict }
            }
            3 => Frame::Decision {
                premises_id: rng.random_range(0..=u64::MAX),
                inside: rng.random_range(0..2u32) == 1,
                timestamp_s: f(rng),
                score: f(rng),
                latency_s: f(rng),
            },
            _ => Frame::Alert {
                premises_id: rng.random_range(0..=u64::MAX),
                raised: rng.random_range(0..2u32) == 1,
                timestamp_s: f(rng),
                consecutive_out: rng.random_range(0..=u32::MAX),
            },
        }
    }
}

/// Bitwise equality that treats NaN == NaN (frames carry f64 payloads;
/// a round trip must preserve the exact bits, and `PartialEq` on NaN
/// would report spurious mismatches).
fn frames_bitwise_equal(a: &Frame, b: &Frame) -> bool {
    let bits = |x: f64| x.to_bits();
    match (a, b) {
        (
            Frame::Decision {
                premises_id: p1,
                inside: i1,
                timestamp_s: t1,
                score: s1,
                latency_s: l1,
            },
            Frame::Decision {
                premises_id: p2,
                inside: i2,
                timestamp_s: t2,
                score: s2,
                latency_s: l2,
            },
        ) => {
            p1 == p2
                && i1 == i2
                && bits(*t1) == bits(*t2)
                && bits(*s1) == bits(*s2)
                && bits(*l1) == bits(*l2)
        }
        (
            Frame::Alert { premises_id: p1, raised: r1, timestamp_s: t1, consecutive_out: c1 },
            Frame::Alert { premises_id: p2, raised: r2, timestamp_s: t2, consecutive_out: c2 },
        ) => p1 == p2 && r1 == r2 && bits(*t1) == bits(*t2) && c1 == c2,
        (
            Frame::Record { premises_id: p1, record: r1, trace: t1 },
            Frame::Record { premises_id: p2, record: r2, trace: t2 },
        ) => {
            p1 == p2
                && t1 == t2
                && bits(r1.timestamp_s) == bits(r2.timestamp_s)
                && r1.readings.len() == r2.readings.len()
                && r1
                    .readings
                    .iter()
                    .zip(&r2.readings)
                    .all(|(x, y)| x.mac == y.mac && x.rssi.to_bits() == y.rssi.to_bits())
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// encode → read_frame is the identity on every expressible frame.
    #[test]
    fn any_frame_round_trips(frame in FrameStrategy) {
        let mut wire_bytes = Vec::new();
        wire::encode(&frame, &mut wire_bytes);
        let mut buf = Vec::new();
        let got = wire::read_frame(&mut Cursor::new(&wire_bytes), MAX_FRAME_LEN, &mut buf)
            .expect("round trip must decode")
            .expect("round trip must yield a frame");
        prop_assert!(
            frames_bitwise_equal(&frame, &got),
            "round trip changed the frame: {:?} -> {:?}", frame, got
        );
        // And the stream is fully consumed: the next read is clean EOF.
        let consumed = wire_bytes.len() as u64;
        let mut cursor = Cursor::new(&wire_bytes);
        let _ = wire::read_frame(&mut cursor, MAX_FRAME_LEN, &mut buf);
        prop_assert_eq!(cursor.position(), consumed);
    }

    /// A record without the trace tail is encoded in the pre-tracing
    /// layout byte for byte (same frame, 16 bytes shorter than its
    /// traced twin) and decodes to `trace: None` — old clients and old
    /// captures keep working unchanged.
    #[test]
    fn untraced_records_keep_the_old_layout(frame in FrameStrategy) {
        let Frame::Record { premises_id, record, .. } = frame else { return Ok(()) };
        let old = Frame::Record { premises_id, record: record.clone(), trace: None };
        let traced = Frame::Record {
            premises_id,
            record,
            trace: Some(WireTrace { trace_id: 7, parent_span: 9 }),
        };
        let (mut old_bytes, mut traced_bytes) = (Vec::new(), Vec::new());
        wire::encode(&old, &mut old_bytes);
        wire::encode(&traced, &mut traced_bytes);
        prop_assert_eq!(traced_bytes.len(), old_bytes.len() + 16);
        let mut buf = Vec::new();
        let got = wire::read_frame(&mut Cursor::new(&old_bytes), MAX_FRAME_LEN, &mut buf)
            .expect("old layout must decode")
            .expect("old layout must yield a frame");
        let Frame::Record { trace, .. } = got else {
            return Err("decoded to a different kind".to_string());
        };
        prop_assert_eq!(trace, None, "absent tail must decode as an untraced record");
    }

    /// Flipping any single byte of an encoded frame is always detected:
    /// the read errors (checksum, length, framing) — it never panics and
    /// never yields a frame as if nothing happened.
    #[test]
    fn single_byte_corruption_is_always_detected(frame in FrameStrategy, noise in 0u64..u64::MAX) {
        let mut wire_bytes = Vec::new();
        wire::encode(&frame, &mut wire_bytes);
        let pos = (noise as usize) % wire_bytes.len();
        let flip = 1u8 << ((noise >> 32) % 8);
        wire_bytes[pos] ^= flip;
        let mut buf = Vec::new();
        let result = wire::read_frame(&mut Cursor::new(&wire_bytes), MAX_FRAME_LEN, &mut buf);
        prop_assert!(
            result.is_err(),
            "corruption at byte {} (bit {:#04x}) went undetected: {:?}",
            pos, flip, result
        );
    }

    /// Truncating an encoded frame anywhere strictly inside it reads as
    /// Torn; truncating to nothing is a clean EOF.
    #[test]
    fn truncation_is_torn_or_clean_eof(frame in FrameStrategy, noise in 0u64..u64::MAX) {
        let mut wire_bytes = Vec::new();
        wire::encode(&frame, &mut wire_bytes);
        let cut = (noise as usize) % wire_bytes.len();
        let mut buf = Vec::new();
        let result = wire::read_frame(&mut Cursor::new(&wire_bytes[..cut]), MAX_FRAME_LEN, &mut buf);
        if cut == 0 {
            prop_assert!(matches!(result, Ok(None)), "empty stream must be clean EOF: {:?}", result);
        } else {
            prop_assert!(
                matches!(result, Err(wire::WireError::Torn)),
                "cut at {} of {} must be Torn: {:?}", cut, wire_bytes.len(), result
            );
        }
    }
}
