//! Property tests for fleet determinism: the sharded multi-tenant
//! runtime must make exactly the decisions a standalone [`Monitor`]
//! makes — bitwise, scores included — when both see the same records in
//! the same epoch grouping, across 1, 2 and 4 shards.
//!
//! Epoch boundaries are the contract: the fleet coalesces each premises'
//! backlog into `infer_batch` epochs of at most `max_batch` records.
//! Submitting while paused and flushing reproduces that grouping
//! deterministically, and the standalone reference applies the identical
//! chunking via `process_batch`.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use gem_core::{Gem, GemConfig, GemSnapshot};
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Fleet, FleetConfig, Monitor, MonitorConfig};
use gem_signal::SignalRecord;

/// One trained tenant: a snapshot (cheap to restore per case, expensive
/// to fit) plus its held-out record stream.
struct Tenant {
    snapshot_json: String,
    stream: Vec<SignalRecord>,
}

/// Three fitted tenants, trained once for the whole test binary.
fn tenants() -> &'static Vec<Tenant> {
    static TENANTS: OnceLock<Vec<Tenant>> = OnceLock::new();
    TENANTS.get_or_init(|| {
        (1..=3u32)
            .map(|user| {
                let mut cfg = ScenarioConfig::user(user);
                cfg.train_duration_s = 120.0;
                cfg.n_test_in = 12;
                cfg.n_test_out = 12;
                let ds = Scenario::build(cfg).generate();
                let gem = Gem::fit(GemConfig::default(), &ds.train);
                Tenant {
                    snapshot_json: GemSnapshot::capture(&gem).to_json().unwrap(),
                    stream: ds.test.iter().map(|t| t.record.clone()).collect(),
                }
            })
            .collect()
    })
}

fn restore(tenant: &Tenant) -> Gem {
    GemSnapshot::from_json(&tenant.snapshot_json).unwrap().restore().unwrap()
}

/// A randomized fleet run: shard count, tenant subset, coalescing cap
/// and chunked submission schedule.
#[derive(Debug, Clone)]
struct Plan {
    shards: usize,
    n_premises: usize,
    max_batch: usize,
    /// Records submitted per premises in each pause/flush cycle.
    chunk_sizes: Vec<usize>,
}

struct PlanStrategy;

impl Strategy for PlanStrategy {
    type Value = Plan;

    fn sample(&self, rng: &mut StdRng) -> Plan {
        let n_chunks = rng.random_range(1..4usize);
        Plan {
            shards: [1usize, 2, 4][rng.random_range(0..3usize)],
            n_premises: rng.random_range(1..4usize),
            max_batch: [1usize, 3, 32][rng.random_range(0..3usize)],
            chunk_sizes: (0..n_chunks).map(|_| rng.random_range(1..7usize)).collect(),
        }
    }
}

/// Decision-bearing events for one premises, in order.
fn fleet_events_of(events: &[gem_service::FleetEvent], premises: u64) -> Vec<Event> {
    events.iter().filter(|e| e.premises_id == premises).map(|e| e.event.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharded fleet decisions are bitwise-equal to a standalone monitor
    /// fed the same records with the same epoch grouping.
    #[test]
    fn fleet_matches_standalone_bitwise(plan in PlanStrategy) {
        let tenants = tenants();
        let premises_ids: Vec<u64> = (0..plan.n_premises as u64).map(|i| i * 17 + 3).collect();

        // The fleet side.
        let monitors: Vec<(u64, Monitor)> = premises_ids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, Monitor::new(restore(&tenants[i]), MonitorConfig::default())))
            .collect();
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig {
                shards: plan.shards,
                max_batch: plan.max_batch,
                queue_per_shard: 256,
                dir: None,
                snapshot_interval: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let mut fleet_events = Vec::new();
        let mut cursors = vec![0usize; premises_ids.len()];
        for &chunk in &plan.chunk_sizes {
            fleet.pause();
            for (i, &p) in premises_ids.iter().enumerate() {
                let stream = &tenants[i].stream;
                for k in 0..chunk {
                    let record = stream[(cursors[i] + k) % stream.len()].clone();
                    prop_assert!(fleet.submit(p, record).accepted());
                }
                cursors[i] += chunk;
            }
            fleet.flush().unwrap();
            while let Ok(e) = fleet.events().try_recv() {
                fleet_events.push(e);
            }
            fleet.resume();
        }
        fleet.shutdown().unwrap();

        // The standalone reference: same records, same epoch chunking.
        for (i, &p) in premises_ids.iter().enumerate() {
            let mut reference = Monitor::new(restore(&tenants[i]), MonitorConfig::default());
            let stream = &tenants[i].stream;
            let mut expected = Vec::new();
            let mut cursor = 0usize;
            for &chunk in &plan.chunk_sizes {
                let records: Vec<SignalRecord> =
                    (0..chunk).map(|k| stream[(cursor + k) % stream.len()].clone()).collect();
                cursor += chunk;
                // A flushed backlog of `chunk` records drains as
                // sequential epochs of at most `max_batch`.
                for epoch in records.chunks(plan.max_batch) {
                    expected.extend(reference.process_batch(epoch));
                }
            }
            let got = fleet_events_of(&fleet_events, p);
            prop_assert_eq!(
                &got, &expected,
                "premises {} diverged (shards={}, max_batch={})",
                p, plan.shards, plan.max_batch
            );
        }
    }

    /// Autonomous drain determinism: with `max_batch = 1` every record is
    /// its own epoch, so per-premises decisions must be bitwise-equal to
    /// the standalone monitor even when shards drain live (no pause) and
    /// submissions race in from one thread per premises. Epoch *timing*
    /// is up to each shard's own loop; decision *content and order* are
    /// not.
    #[test]
    fn live_concurrent_drain_matches_standalone(plan in PlanStrategy) {
        let tenants = tenants();
        let premises_ids: Vec<u64> = (0..plan.n_premises as u64).map(|i| i * 17 + 3).collect();
        let per_premises: usize = plan.chunk_sizes.iter().sum();

        let monitors: Vec<(u64, Monitor)> = premises_ids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, Monitor::new(restore(&tenants[i]), MonitorConfig::default())))
            .collect();
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig {
                shards: plan.shards,
                max_batch: 1,
                queue_per_shard: 256,
                dir: None,
                snapshot_interval: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();

        // One racing submitter thread per premises, against live shards.
        std::thread::scope(|scope| {
            let handles: Vec<_> = premises_ids
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let submitter = fleet.submitter();
                    let stream = &tenants[i].stream;
                    scope.spawn(move || {
                        for k in 0..per_premises {
                            let record = stream[k % stream.len()].clone();
                            assert!(submitter.submit(p, record).accepted());
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        fleet.flush().unwrap();
        let mut fleet_events = Vec::new();
        while let Ok(e) = fleet.events().try_recv() {
            fleet_events.push(e);
        }
        fleet.shutdown().unwrap();

        for (i, &p) in premises_ids.iter().enumerate() {
            let mut reference = Monitor::new(restore(&tenants[i]), MonitorConfig::default());
            let stream = &tenants[i].stream;
            let mut expected = Vec::new();
            for k in 0..per_premises {
                expected.extend(reference.process_batch(&[stream[k % stream.len()].clone()]));
            }
            let got = fleet_events_of(&fleet_events, p);
            prop_assert_eq!(
                &got, &expected,
                "premises {} diverged under live drain (shards={})",
                p, plan.shards
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cold-tier churn is invisible: a durable fleet capped at ONE
    /// resident premises per shard — so every multi-tenant chunk forces
    /// spill/hydrate cycles — snapshotted mid-stream, killed, and
    /// recovered, makes bitwise the same decisions as an unbounded
    /// resident fleet and a standalone monitor fed the same epochs.
    #[test]
    fn hot_cap_churn_and_recovery_match_resident_and_standalone(plan in PlanStrategy) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let tenants = tenants();
        let premises_ids: Vec<u64> = (0..plan.n_premises as u64).map(|i| i * 17 + 3).collect();
        let dir = std::env::temp_dir().join(format!(
            "gem_churn_props_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FleetConfig {
            shards: 1,
            max_batch: plan.max_batch,
            queue_per_shard: 256,
            dir: Some(dir.clone()),
            snapshot_interval: None,
            hot_premises_per_shard: Some(1),
            ..FleetConfig::default()
        };
        // Records per premises submitted only to the recovered fleet.
        const TAIL: usize = 3;

        // Churn run: chunks, a snapshot after the first chunk, then a
        // kill. Epochs decided after the snapshot live only in the
        // journal.
        let monitors: Vec<(u64, Monitor)> = premises_ids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, Monitor::new(restore(&tenants[i]), MonitorConfig::default())))
            .collect();
        let fleet = Fleet::spawn(monitors, cfg.clone()).unwrap();
        let mut pre_events = Vec::new();
        let mut snap_idx = 0usize;
        let mut cursors = vec![0usize; premises_ids.len()];
        for (c, &chunk) in plan.chunk_sizes.iter().enumerate() {
            fleet.pause();
            for (i, &p) in premises_ids.iter().enumerate() {
                let stream = &tenants[i].stream;
                for k in 0..chunk {
                    let record = stream[(cursors[i] + k) % stream.len()].clone();
                    prop_assert!(fleet.submit(p, record).accepted());
                }
                cursors[i] += chunk;
            }
            fleet.flush().unwrap();
            while let Ok(e) = fleet.events().try_recv() {
                pre_events.push(e);
            }
            fleet.resume();
            if c == 0 {
                fleet.snapshot().unwrap();
                snap_idx = pre_events.len();
            }
        }
        fleet.abort();

        // Recovery replays exactly the post-snapshot decisions.
        let recovery = Fleet::recover(cfg.clone()).unwrap();
        for &p in &premises_ids {
            prop_assert_eq!(
                fleet_events_of(&recovery.replayed, p),
                fleet_events_of(&pre_events[snap_idx..], p),
                "replay diverged for premises {} (max_batch={})",
                p, plan.max_batch
            );
        }
        let fleet = recovery.fleet;
        fleet.pause();
        for (i, &p) in premises_ids.iter().enumerate() {
            let stream = &tenants[i].stream;
            for k in 0..TAIL {
                let record = stream[(cursors[i] + k) % stream.len()].clone();
                prop_assert!(fleet.submit(p, record).accepted());
            }
        }
        fleet.flush().unwrap();
        let mut tail_events = Vec::new();
        while let Ok(e) = fleet.events().try_recv() {
            tail_events.push(e);
        }
        fleet.shutdown().unwrap();

        // Fully-resident run: same chunks plus the tail, no cap, no
        // durability, no interruption.
        let chunks_plus_tail: Vec<usize> =
            plan.chunk_sizes.iter().copied().chain([TAIL]).collect();
        let monitors: Vec<(u64, Monitor)> = premises_ids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, Monitor::new(restore(&tenants[i]), MonitorConfig::default())))
            .collect();
        let resident = Fleet::spawn(
            monitors,
            FleetConfig {
                shards: 1,
                max_batch: plan.max_batch,
                queue_per_shard: 256,
                dir: None,
                snapshot_interval: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let mut resident_events = Vec::new();
        let mut res_cursors = vec![0usize; premises_ids.len()];
        for &chunk in &chunks_plus_tail {
            resident.pause();
            for (i, &p) in premises_ids.iter().enumerate() {
                let stream = &tenants[i].stream;
                for k in 0..chunk {
                    let record = stream[(res_cursors[i] + k) % stream.len()].clone();
                    prop_assert!(resident.submit(p, record).accepted());
                }
                res_cursors[i] += chunk;
            }
            resident.flush().unwrap();
            while let Ok(e) = resident.events().try_recv() {
                resident_events.push(e);
            }
            resident.resume();
        }
        resident.shutdown().unwrap();

        // All three agree, per premises, event for event.
        for (i, &p) in premises_ids.iter().enumerate() {
            let mut reference = Monitor::new(restore(&tenants[i]), MonitorConfig::default());
            let stream = &tenants[i].stream;
            let mut expected = Vec::new();
            let mut cursor = 0usize;
            for &chunk in &chunks_plus_tail {
                let records: Vec<SignalRecord> =
                    (0..chunk).map(|k| stream[(cursor + k) % stream.len()].clone()).collect();
                cursor += chunk;
                for epoch in records.chunks(plan.max_batch) {
                    expected.extend(reference.process_batch(epoch));
                }
            }
            let mut churn = fleet_events_of(&pre_events, p);
            churn.extend(fleet_events_of(&tail_events, p));
            prop_assert_eq!(
                &churn, &expected,
                "churned fleet diverged from standalone for premises {} (max_batch={})",
                p, plan.max_batch
            );
            let resident_got = fleet_events_of(&resident_events, p);
            prop_assert_eq!(
                &resident_got, &expected,
                "resident fleet diverged from standalone for premises {}",
                p
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
