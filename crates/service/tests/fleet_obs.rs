//! Admission accounting under concurrency: however many threads hammer
//! the fleet through [`FleetSubmitter`] handles, every submission must
//! be classified exactly once — `accepts + queued + sheds +
//! unknown_sheds == submitted` — and the per-shard drop counters must
//! sum to the fleet total. Runs across 1, 2 and 4 shards with a
//! randomized premises mix.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use gem_core::{Gem, GemConfig, GemSnapshot};
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Fleet, FleetConfig, Monitor, MonitorConfig};
use gem_signal::SignalRecord;

struct Tenant {
    snapshot_json: String,
    stream: Vec<SignalRecord>,
}

/// Three fitted tenants, trained once for the whole test binary.
fn tenants() -> &'static Vec<Tenant> {
    static TENANTS: OnceLock<Vec<Tenant>> = OnceLock::new();
    TENANTS.get_or_init(|| {
        (1..=3u32)
            .map(|user| {
                let mut cfg = ScenarioConfig::user(user);
                cfg.train_duration_s = 120.0;
                cfg.n_test_in = 10;
                cfg.n_test_out = 10;
                let ds = Scenario::build(cfg).generate();
                let gem = Gem::fit(GemConfig::default(), &ds.train);
                Tenant {
                    snapshot_json: GemSnapshot::capture(&gem).to_json().unwrap(),
                    stream: ds.test.iter().map(|t| t.record.clone()).collect(),
                }
            })
            .collect()
    })
}

fn restore_monitor(tenant: &Tenant) -> Monitor {
    let gem = GemSnapshot::from_json(&tenant.snapshot_json).unwrap().restore().unwrap();
    Monitor::new(gem, MonitorConfig::default())
}

/// A randomized concurrent-submission storm.
#[derive(Debug, Clone)]
struct Storm {
    shards: usize,
    n_premises: usize,
    /// Submitting threads.
    threads: usize,
    /// Submissions per thread; a fraction go to an unregistered id.
    per_thread: usize,
    /// Tiny queue to force queue/quota sheds alongside accepts.
    queue_per_shard: usize,
}

struct StormStrategy;

impl Strategy for StormStrategy {
    type Value = Storm;

    fn sample(&self, rng: &mut StdRng) -> Storm {
        Storm {
            shards: [1usize, 2, 4][rng.random_range(0..3usize)],
            n_premises: rng.random_range(1..4usize),
            threads: rng.random_range(2..5usize),
            per_thread: rng.random_range(20..60usize),
            queue_per_shard: [4usize, 16, 256][rng.random_range(0..3usize)],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent submitters never lose or double-count an admission
    /// verdict, and `FleetStats` is internally consistent.
    #[test]
    fn concurrent_submissions_are_fully_accounted(storm in StormStrategy) {
        let tenants = tenants();
        let premises_ids: Vec<u64> =
            (0..storm.n_premises as u64).map(|i| i * 13 + 7).collect();
        let monitors: Vec<(u64, Monitor)> = premises_ids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, restore_monitor(&tenants[i])))
            .collect();
        let fleet = Fleet::spawn(
            monitors,
            FleetConfig {
                shards: storm.shards,
                queue_per_shard: storm.queue_per_shard,
                ..FleetConfig::default()
            },
        )
        .unwrap();

        let handles: Vec<_> = (0..storm.threads)
            .map(|t| {
                let submitter = fleet.submitter();
                let ids = premises_ids.clone();
                let stream: Vec<SignalRecord> =
                    tenants[t % tenants.len()].stream.clone();
                let per_thread = storm.per_thread;
                std::thread::spawn(move || {
                    for k in 0..per_thread {
                        // Every 7th submission targets an unregistered
                        // premises; the rest round-robin the real ones.
                        let premises = if k % 7 == 3 {
                            999_983
                        } else {
                            ids[k % ids.len()]
                        };
                        submitter.submit(premises, stream[k % stream.len()].clone());
                    }
                })
            })
            .collect();
        // Drain events while the storm runs so the shards never stall.
        while handles.iter().any(|h| !h.is_finished()) {
            while fleet.events().try_recv().is_ok() {}
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        for h in handles {
            h.join().unwrap();
        }
        fleet.flush().unwrap();
        while fleet.events().try_recv().is_ok() {}

        let stats = fleet.fleet_stats();
        let total = (storm.threads * storm.per_thread) as u64;
        prop_assert_eq!(stats.submitted, total, "every submission must be counted");
        prop_assert_eq!(
            stats.accepts + stats.queued + stats.sheds + stats.unknown_sheds,
            stats.submitted,
            "verdicts must partition the submissions: {:?}",
            stats
        );
        prop_assert!(stats.unknown_sheds > 0, "the unregistered premises must shed");
        prop_assert_eq!(stats.shards.len(), storm.shards);
        let per_shard_drops: u64 = stats.shards.iter().map(|s| s.dropped_events).sum();
        prop_assert_eq!(per_shard_drops, fleet.dropped_events(), "per-shard drops must sum");
        // After a flush with no submitters running, nothing is queued.
        for s in &stats.shards {
            prop_assert_eq!(s.queue_depth, 0, "flushed shard must be empty: {:?}", s);
        }

        // The lock-free per-premises snapshot agrees with the
        // admission-side verdict partition: accepted work was decided.
        let decided: usize = fleet
            .stats_snapshot()
            .iter()
            .map(|(_, m)| m.scans)
            .sum();
        prop_assert_eq!(
            decided as u64,
            stats.accepts + stats.queued,
            "every admitted record must be decided after flush"
        );
        fleet.shutdown().unwrap();
    }
}
