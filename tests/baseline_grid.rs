//! Integration tests of the Table-I comparison grid: every baseline runs
//! end-to-end on simulated data, and the paper's headline orderings hold
//! on an easy scenario.

use gem::baselines::{
    Autoencoder, AutoencoderConfig, GraphSage, GraphSageConfig, Inoa, InoaConfig, IsolationForest,
    Lof, Mds, SignatureHome, SignatureHomeConfig,
};
use gem::core::pipeline::{Embedder, Pipeline};
use gem::core::{EnhancedDetector, Gem, GemConfig};
use gem::eval::Confusion;
use gem::rfsim::{Scenario, ScenarioConfig};
use gem::signal::Dataset;

fn dataset() -> Dataset {
    let mut cfg = ScenarioConfig::user(8); // large apartment, many MACs
    cfg.train_duration_s = 180.0;
    cfg.n_test_in = 60;
    cfg.n_test_out = 60;
    Scenario::build(cfg).generate()
}

fn stream<E: Embedder, D: gem::core::pipeline::OutlierModel>(
    embedder: E,
    detector: D,
    ds: &Dataset,
) -> Confusion {
    let mut p = Pipeline::new(embedder, detector);
    let mut c = Confusion::default();
    for t in &ds.test {
        c.record(t.label, p.infer(&t.record).label);
    }
    c
}

fn fit_od(cfg: &GemConfig, embs: &gem::nn::Tensor) -> EnhancedDetector {
    EnhancedDetector::fit_calibrated(
        embs,
        cfg.bins,
        cfg.temperature as f64,
        cfg.tau_u as f64,
        cfg.tau_l as f64,
        cfg.calibrate_keep_in,
        cfg.calibrate_confident,
    )
}

#[test]
fn graphsage_od_pipeline_runs() {
    let ds = dataset();
    let cfg = GemConfig::default();
    let (embedder, embs) = GraphSage::fit(GraphSageConfig::default(), &ds.train);
    let c = stream(embedder, fit_od(&cfg, &embs), &ds);
    assert_eq!(c.total(), 120);
    // GraphSAGE treats the graph as homogeneous and is expected to be
    // markedly worse than GEM (that's the paper's point) — just require
    // it to run and not be pathological.
    assert!(c.accuracy() > 0.4, "accuracy {:.3}", c.accuracy());
}

#[test]
fn autoencoder_od_pipeline_runs() {
    let ds = dataset();
    let cfg = GemConfig::default();
    let (embedder, embs) = Autoencoder::fit(AutoencoderConfig::default(), &ds.train);
    let c = stream(embedder, fit_od(&cfg, &embs), &ds);
    assert_eq!(c.total(), 120);
}

#[test]
fn mds_od_pipeline_runs() {
    let ds = dataset();
    let cfg = GemConfig::default();
    let capped = gem::signal::RecordSet::from_records(ds.train.records()[..100].to_vec());
    let (embedder, embs) = Mds::fit(cfg.embedding_dim, &capped);
    let c = stream(embedder, fit_od(&cfg, &embs), &ds);
    assert_eq!(c.total(), 120);
}

#[test]
fn bisage_with_classic_detectors_runs() {
    let ds = dataset();
    let cfg = GemConfig::default();
    let (embedder, embs) = gem::core::gem::GemEmbedder::fit(&cfg, &ds.train);
    let iforest = IsolationForest::fit(&embs, 50, 128, 0.05, 1);
    let c = stream(embedder, iforest, &ds);
    assert!(c.accuracy() > 0.5, "BiSAGE+iForest accuracy {:.3}", c.accuracy());

    let (embedder, embs) = gem::core::gem::GemEmbedder::fit(&cfg, &ds.train);
    let lof = Lof::fit(&embs, 15, 0.05);
    let c = stream(embedder, lof, &ds);
    assert!(c.accuracy() > 0.5, "BiSAGE+LOF accuracy {:.3}", c.accuracy());
}

#[test]
fn standalone_systems_run() {
    let ds = dataset();
    let sh = SignatureHome::fit(SignatureHomeConfig::default(), &ds.train);
    let inoa = Inoa::fit(InoaConfig::default(), &ds.train);
    let mut sh_c = Confusion::default();
    let mut inoa_c = Confusion::default();
    for t in &ds.test {
        sh_c.record(t.label, sh.infer(&t.record).0);
        inoa_c.record(t.label, inoa.infer(&t.record).0);
    }
    assert!(sh_c.accuracy() > 0.5, "SignatureHome accuracy {:.3}", sh_c.accuracy());
    assert!(inoa_c.accuracy() > 0.5, "INOA accuracy {:.3}", inoa_c.accuracy());
}

#[test]
fn gem_holds_its_own_against_matrix_baselines() {
    // The paper's headline: GEM's outside detection beats the
    // padding-based embedders. Asserted loosely on one easy scenario.
    let ds = dataset();
    let cfg = GemConfig::default();
    let mut gem = Gem::fit(cfg.clone(), &ds.train);
    let mut gem_c = Confusion::default();
    for t in &ds.test {
        gem_c.record(t.label, gem.infer(&t.record).label);
    }
    let (embedder, embs) = Autoencoder::fit(AutoencoderConfig::default(), &ds.train);
    let ae_c = stream(embedder, fit_od(&cfg, &embs), &ds);
    let gem_f = gem_c.out_metrics().f_score;
    let ae_f = ae_c.out_metrics().f_score;
    assert!(
        gem_f + 0.05 >= ae_f,
        "GEM F_out {gem_f:.3} should not lose clearly to autoencoder {ae_f:.3}"
    );
}
