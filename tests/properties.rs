//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use gem::core::{BiSage, BiSageConfig, EnhancedDetector, HistogramModel};
use gem::graph::{BipartiteGraph, NegativeTable, WalkConfig, WalkPairs, WeightFn};
use gem::nn::Tensor;
use gem::rfsim::{Scenario, ScenarioConfig};
use gem::signal::{MacAddr, RecordSet, SignalRecord};

/// Strategy: a record with 1–8 readings over a small MAC space.
fn record_strategy() -> impl Strategy<Value = SignalRecord> {
    prop::collection::vec((0u64..20, -100.0f32..-20.0), 1..8).prop_map(|pairs| {
        SignalRecord::from_pairs(0.0, pairs.into_iter().map(|(m, r)| (MacAddr::from_raw(m), r)))
    })
}

fn record_set_strategy() -> impl Strategy<Value = RecordSet> {
    prop::collection::vec(record_strategy(), 1..30).prop_map(RecordSet::from_records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Graph construction invariants: bipartite counts, positive weights,
    /// degree symmetry (Σ record degrees = Σ MAC degrees = |E|).
    #[test]
    fn graph_invariants(records in record_set_strategy()) {
        let g = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        prop_assert_eq!(g.n_records(), records.len());
        prop_assert_eq!(g.n_macs(), records.mac_universe().len());
        let rec_deg: usize = (0..g.n_records() as u32)
            .map(|r| g.record_neighbors(gem::graph::RecordId(r)).len())
            .sum();
        let mac_deg: usize = (0..g.n_macs() as u32)
            .map(|m| g.mac_neighbors(gem::graph::MacId(m)).len())
            .sum();
        prop_assert_eq!(rec_deg, g.n_edges());
        prop_assert_eq!(mac_deg, g.n_edges());
        for r in 0..g.n_records() as u32 {
            for (_, w) in g.record_neighbors(gem::graph::RecordId(r)) {
                prop_assert!(w > 0.0, "edge weights must be positive");
            }
        }
    }

    /// Walk pairs always connect nodes of opposite types.
    #[test]
    fn walks_alternate_types(records in record_set_strategy(), seed in 0u64..1000) {
        let g = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        let mut rng = gem::signal::rng::child_rng(seed, 0);
        let pairs = WalkPairs::generate(&g, WalkConfig { walks_per_node: 2, walk_length: 4 }, &mut rng);
        for (x, y) in &pairs.pairs {
            prop_assert_ne!(x.is_record(), y.is_record());
        }
    }

    /// The negative table never yields isolated nodes.
    #[test]
    fn negative_table_support(records in record_set_strategy(), seed in 0u64..1000) {
        let g = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        if let Some(table) = NegativeTable::build(&g, 0.75) {
            let mut rng = gem::signal::rng::child_rng(seed, 1);
            for _ in 0..50 {
                let z = table.sample(&mut rng);
                prop_assert!(g.degree(z) > 0);
            }
        }
    }

    /// HBOS raw scores are finite, and absorbing an *in-range* sample
    /// never increases its own score. (Out-of-range samples clamp into
    /// edge bins on update but score as empty bins, so the property is
    /// scoped to the fitted range.)
    #[test]
    fn hbos_update_monotonicity(
        values in prop::collection::vec(-1.0f32..1.0, 24..60),
        probe_idx in 0usize..5,
    ) {
        let rows = values.len() / 4;
        if rows < 2 { return Ok(()); }
        let train = Tensor::from_vec(rows, 4, values[..rows * 4].to_vec());
        let mut model = HistogramModel::fit(&train, 6);
        let probe = train.row(probe_idx % rows).to_vec();
        let before = model.raw_score(&probe);
        prop_assert!(before.is_finite());
        model.update(&probe);
        let after = model.raw_score(&probe);
        prop_assert!(after <= before + 1e-9, "absorbing a sample must not raise its score");
    }

    /// The enhanced detector's S_T is within (0,1) and monotone in H̄.
    #[test]
    fn detector_score_bounds(
        values in prop::collection::vec(-1.0f32..1.0, 40..80),
        probe in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let rows = values.len() / 4;
        let train = Tensor::from_vec(rows, 4, values[..rows * 4].to_vec());
        let det = EnhancedDetector::fit(&train, 6, 0.06, 0.005, 0.001);
        let s = det.score(&probe);
        prop_assert!(s > 0.0 && s < 1.0, "S_T must be strictly inside (0,1), got {}", s);
        let h = det.normalized_raw(&probe);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    /// Matrix view roundtrip: every reading lands in its column; pads
    /// fill the rest.
    #[test]
    fn padded_matrix_roundtrip(records in record_set_strategy()) {
        let m = records.to_matrix(-120.0);
        for (i, rec) in records.iter().enumerate() {
            for reading in &rec.readings {
                let j = m.macs.binary_search(&reading.mac).unwrap();
                prop_assert_eq!(m.row(i)[j], reading.rssi);
            }
            let n_padded = m.row(i).iter().filter(|&&v| v == -120.0).count();
            prop_assert!(n_padded >= m.cols() - rec.len());
        }
    }
}

// Training a model per proptest case is costly, so the data-parallel
// determinism contract gets its own small-case block.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For a fixed seed, `fit()` on the worker pool and `fit()` forced
    /// sequential (`num_threads = 1`) must produce bit-identical
    /// aggregation matrices and epoch losses: every chunk derives its RNG
    /// from `(seed, epoch, chunk_idx)` and chunk gradients are reduced in
    /// fixed chunk order, so thread count never touches the arithmetic.
    /// Both fits run on arena-backed tapes (each worker reuses its
    /// thread-local buffer pool), and the property is checked with the
    /// sparse (lazy) and dense Adam table updates alike.
    #[test]
    fn parallel_and_sequential_training_bit_identical(
        user in 1u32..=3,
        seed in 0u64..1000,
        grad_accum in 1usize..=4,
        sparse_sel in 0usize..2,
    ) {
        let mut scen = ScenarioConfig::user(user);
        scen.train_duration_s = 45.0;
        scen.n_test_in = 0;
        scen.n_test_out = 0;
        let ds = Scenario::build(scen).generate();
        let g = BipartiteGraph::from_records(WeightFn::default(), ds.train.iter());

        let fit_with = |threads: usize| {
            let cfg = BiSageConfig {
                dim: 8,
                sample_sizes: vec![4, 2],
                epochs: 2,
                batch_size: 32,
                num_threads: threads,
                grad_accum,
                sparse_adam: sparse_sel == 1,
                seed,
                ..BiSageConfig::default()
            };
            let mut model = BiSage::new(cfg);
            let report = model.fit(&g);
            (model, report)
        };
        let (seq_model, seq_report) = fit_with(1);
        let (par_model, par_report) = fit_with(0);

        prop_assert_eq!(&seq_report.epoch_losses, &par_report.epoch_losses);
        let (seq_wh, seq_wl) = seq_model.aggregation_weights();
        let (par_wh, par_wl) = par_model.aggregation_weights();
        prop_assert_eq!(seq_wh, par_wh, "W_h must be bit-identical across thread counts");
        prop_assert_eq!(seq_wl, par_wl, "W_l must be bit-identical across thread counts");
        prop_assert_eq!(
            seq_model.embed_all_records(&g),
            par_model.embed_all_records(&g)
        );
    }
}
