//! End-to-end integration tests: simulator → graph → BiSAGE → detector.

use gem::core::{Gem, GemConfig};
use gem::eval::Confusion;
use gem::rfsim::{Scenario, ScenarioConfig};
use gem::signal::{Dataset, Label};

fn small_dataset(uid: u32) -> Dataset {
    let mut cfg = ScenarioConfig::user(uid);
    cfg.train_duration_s = 300.0;
    cfg.n_test_in = 60;
    cfg.n_test_out = 60;
    Scenario::build(cfg).generate()
}

fn run_gem(ds: &Dataset) -> Confusion {
    let mut gem = Gem::fit(GemConfig::default(), &ds.train);
    let mut c = Confusion::default();
    for t in &ds.test {
        c.record(t.label, gem.infer(&t.record).label);
    }
    c
}

#[test]
fn gem_beats_chance_across_housing_types() {
    // One user per housing archetype. The MAC-sparse two-story house
    // (user 10) is the hardest world at this reduced data size.
    for (uid, floor) in [(1u32, 0.75), (4, 0.75), (8, 0.75), (10, 0.62)] {
        let ds = small_dataset(uid);
        let c = run_gem(&ds);
        assert!(c.accuracy() > floor, "user {uid}: accuracy {:.3} too low", c.accuracy());
    }
}

#[test]
fn full_run_is_deterministic() {
    let ds = small_dataset(2);
    let a = run_gem(&ds);
    let b = run_gem(&ds);
    assert_eq!(a, b, "same seed, same dataset → identical confusion matrix");
}

#[test]
fn graph_grows_during_streaming_but_untrusted_records_are_quarantined() {
    let ds = small_dataset(3);
    let mut gem = Gem::fit(GemConfig::default(), &ds.train);
    let n0 = gem.graph().n_records();
    for t in ds.test.iter().take(50) {
        gem.infer(&t.record);
    }
    let grown = gem.graph().n_records() - n0;
    assert!(grown > 0 && grown <= 50, "stream adds record nodes (grew by {grown})");
}

#[test]
fn online_updates_accumulate_only_confident_samples() {
    let ds = small_dataset(5);
    let mut gem = Gem::fit(GemConfig::default(), &ds.train);
    let initial = gem.detector().n_samples();
    let mut in_seen = 0usize;
    for t in &ds.test {
        gem.infer(&t.record);
        if t.label == Label::In {
            in_seen += 1;
        }
    }
    let absorbed = gem.detector().n_samples() - initial;
    assert!(absorbed > 0, "some updates must happen");
    assert!(
        absorbed <= in_seen + ds.count(Label::Out) / 4,
        "absorbed {absorbed} wildly exceeds plausible confident-inlier count"
    );
}

#[test]
fn scores_are_probability_like() {
    let ds = small_dataset(7);
    let mut gem = Gem::fit(GemConfig::default(), &ds.train);
    for t in ds.test.iter().take(40) {
        let d = gem.infer(&t.record);
        assert!((0.0..=1.0).contains(&d.score), "score {}", d.score);
        assert!(d.score.is_finite());
    }
}

#[test]
fn works_from_a_fraction_of_training_data() {
    // The paper's Fig. 9a practicability claim: GEM still functions with
    // a small fraction of the training walk.
    let ds = small_dataset(6);
    let chunks = ds.train.chunks(5);
    let small = Dataset::new(chunks[0].clone(), ds.test.clone());
    let c = run_gem(&small);
    assert!(
        c.accuracy() > 0.55,
        "20% of training data should still beat chance, got {:.3}",
        c.accuracy()
    );
}
